"""Unit tests for the arrival-process layer (repro.workloads.arrival).

Covers the registry, the closed-batch zero-cost contract, interarrival
statistics of every open process, churn quota bounds, and the determinism
guarantees the ``--jobs`` invariance rests on (same seed => byte-identical
plans, plans independent across sessions).
"""

import pickle

import pytest

from repro.errors import ConfigError, WorkloadError
from repro.sim.rng import RngPool
from repro.workloads.arrival import (
    CLOSED_BATCH,
    ArrivalProcess,
    ArrivalSpec,
    Bursty,
    ClosedBatch,
    DiurnalRamp,
    Poisson,
    arrival_names,
    make_arrival,
    register_arrival,
    resolve_arrival,
    unregister_arrival,
)


# ----------------------------------------------------------------- registry
def test_builtin_arrivals_registered():
    assert arrival_names() == ["bursty", "closed", "poisson", "ramp"]


def test_make_arrival_by_name_with_params():
    proc = make_arrival("poisson", rate=0.01)
    assert isinstance(proc, Poisson)
    assert proc.rate == 0.01


def test_make_unknown_arrival_lists_available():
    with pytest.raises(ConfigError, match="poisson"):
        make_arrival("pareto")


def test_register_and_unregister_custom_arrival():
    @register_arrival("test-fixed", description="one request per 10 cycles")
    class Fixed(ArrivalProcess):
        def interarrivals(self, rng, count):
            return [10] * count

    try:
        proc = make_arrival("test-fixed")
        assert proc.name == "test-fixed"
        assert Fixed.description == "one request per 10 cycles"
        assert proc.plan(RngPool(1), "s", 3) == [10, 20, 30]
    finally:
        unregister_arrival("test-fixed")
    with pytest.raises(ConfigError):
        make_arrival("test-fixed")


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigError, match="already registered"):
        register_arrival("poisson")(type("Dup", (ArrivalProcess,), {}))


# ------------------------------------------------------------- closed batch
def test_closed_plan_is_all_zero_and_touches_no_rng_stream():
    pool = RngPool(42)
    plan = ClosedBatch().plan(pool, "sess", 7)
    assert plan == [0] * 7
    # The zero-cost contract: a closed plan must not have created any
    # stream, so default runs draw exactly the randomness they always did.
    assert pool._streams == {}


def test_closed_batch_ignores_churn():
    batch = ClosedBatch(churn=0.9)
    assert batch.churn == 0.0
    assert len(batch.plan(RngPool(1), "s", 5)) == 5


def test_plan_rejects_empty_sessions():
    with pytest.raises(WorkloadError):
        ClosedBatch().plan(RngPool(1), "s", 0)
    with pytest.raises(WorkloadError):
        Poisson(rate=0.01).plan(RngPool(1), "s", 0)


# ------------------------------------------------------------- open processes
def test_poisson_interarrival_mean_matches_rate():
    rate = 0.01  # mean gap 100 cycles
    gaps = Poisson(rate=rate).interarrivals(RngPool(7).stream("g"), 5000)
    assert all(g >= 1 for g in gaps)
    mean = sum(gaps) / len(gaps)
    assert 0.9 / rate < mean < 1.1 / rate


def test_poisson_plan_is_nondecreasing_absolute_ticks():
    plan = Poisson(rate=0.01).plan(RngPool(7), "s", 100)
    assert len(plan) == 100
    assert all(b >= a for a, b in zip(plan, plan[1:]))
    assert plan[0] >= 1  # the first gap is the session's join offset


def test_poisson_rejects_nonpositive_rate():
    with pytest.raises(ConfigError):
        Poisson(rate=0.0)


def test_bursty_parameter_validation():
    with pytest.raises(ConfigError):
        Bursty(rate=0.0)
    with pytest.raises(ConfigError):
        Bursty(rate=0.01, boost=0.5)
    with pytest.raises(ConfigError):
        Bursty(rate=0.01, switch=0.0)
    with pytest.raises(ConfigError):
        Bursty(rate=0.01, switch=1.5)


def test_bursty_mean_between_state_rates():
    proc = Bursty(rate=0.01, boost=4.0, switch=0.2)
    gaps = proc.interarrivals(RngPool(9).stream("g"), 5000)
    assert all(g >= 1 for g in gaps)
    mean = sum(gaps) / len(gaps)
    # The mean gap must sit strictly between the burst-state gap (1/0.04)
    # and the lull-state gap (1/0.0025).
    assert 1.0 / (proc.rate * proc.boost) < mean < 1.0 / (proc.rate / proc.boost)


def test_ramp_validation_and_rate_clamp():
    with pytest.raises(ConfigError):
        DiurnalRamp(rate_lo=0.0, rate_hi=0.01)
    with pytest.raises(ConfigError):
        DiurnalRamp(rate_lo=0.01, rate_hi=0.001)  # a ramp climbs
    with pytest.raises(ConfigError):
        DiurnalRamp(rate_lo=0.001, rate_hi=0.01, period=0)
    ramp = DiurnalRamp(rate_lo=0.001, rate_hi=0.01, period=1000)
    assert ramp.rate_at(0) == 0.001
    assert ramp.rate_at(500) == pytest.approx(0.0055)
    assert ramp.rate_at(10_000) == pytest.approx(0.01)  # clamped past period


def test_ramp_gaps_shrink_as_the_rate_climbs():
    ramp = DiurnalRamp(rate_lo=0.001, rate_hi=0.02, period=50_000)
    gaps = ramp.interarrivals(RngPool(11).stream("g"), 2000)
    early = sum(gaps[:200]) / 200
    late = sum(gaps[-200:]) / 200
    assert late < early


def test_churn_out_of_range_rejected():
    with pytest.raises(ConfigError):
        Poisson(rate=0.01, churn=1.5)
    with pytest.raises(ConfigError):
        Poisson(rate=0.01, churn=-0.1)


def test_churned_plan_is_a_truncated_prefix():
    """Churn draws from a dedicated stream, so a churned session's plan is
    a prefix of the un-churned plan (never below one request)."""
    full = Poisson(rate=0.01, churn=0.0).plan(RngPool(3), "s", 50)
    truncated = None
    for seed in range(20):
        candidate = Poisson(rate=0.01, churn=0.95).plan(RngPool(seed), "s", 50)
        assert 1 <= len(candidate) <= 50
        full_same_seed = Poisson(rate=0.01).plan(RngPool(seed), "s", 50)
        assert candidate == full_same_seed[: len(candidate)]
        if len(candidate) < 50:
            truncated = candidate
    assert truncated is not None  # churn=0.95 truncated at least one seed
    assert len(full) == 50


# ---------------------------------------------------------------- determinism
def test_same_seed_gives_byte_identical_plans():
    a = Poisson(rate=0.005).plan(RngPool(0xC0FFEE), "incast-prod0", 200)
    b = Poisson(rate=0.005).plan(RngPool(0xC0FFEE), "incast-prod0", 200)
    assert a == b


def test_plans_are_independent_across_sessions():
    """Planning session A must not perturb session B's schedule — the
    property that makes multi-session workloads ``--jobs`` invariant."""
    pool = RngPool(5)
    proc = Poisson(rate=0.005)
    _ = proc.plan(pool, "a", 100)
    b_after_a = proc.plan(pool, "b", 100)
    b_alone = proc.plan(RngPool(5), "b", 100)
    assert b_after_a == b_alone


def test_different_sessions_get_different_schedules():
    proc = Poisson(rate=0.005)
    pool = RngPool(5)
    assert proc.plan(pool, "a", 50) != proc.plan(pool, "b", 50)


def test_labels_name_process_and_parameters():
    assert CLOSED_BATCH.label() == "closed()"
    assert Poisson(rate=0.01).label() == "poisson(rate=0.01)"
    assert "churn=0.5" in Poisson(rate=0.01, churn=0.5).label()
    assert "boost=4" in Bursty(rate=0.01).label()
    assert "period=200000" in DiurnalRamp().label()


# -------------------------------------------------------------- ArrivalSpec
def test_spec_sorts_params_and_builds():
    spec = ArrivalSpec.make("poisson", rate=0.01, churn=0.2)
    assert spec.params == (("churn", 0.2), ("rate", 0.01))
    proc = spec.build()
    assert isinstance(proc, Poisson)
    assert proc.rate == 0.01 and proc.churn == 0.2


def test_spec_pickles_across_process_boundary():
    spec = ArrivalSpec.make("bursty", rate=0.02, boost=2.0)
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert isinstance(clone.build(), Bursty)


def test_resolve_arrival_normalizes_every_form():
    assert resolve_arrival(None) is CLOSED_BATCH
    proc = Poisson(rate=0.01)
    assert resolve_arrival(proc) is proc
    built = resolve_arrival(ArrivalSpec.make("poisson", rate=0.01))
    assert isinstance(built, Poisson)
    with pytest.raises(ConfigError):
        resolve_arrival("poisson")
