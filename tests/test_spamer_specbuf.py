"""Unit tests for specBuf entries and per-SQI rings."""

import pytest

from repro.errors import RegistrationError
from repro.mem.address import Segment
from repro.spamer.specbuf import SpecBuf
from repro.vlink.endpoint import ConsumerEndpoint


def make_endpoint(env, endpoint_id=0, sqi=1, num_lines=4):
    seg = Segment(0x1000 * (endpoint_id + 1), 4096)
    return ConsumerEndpoint(env, endpoint_id, sqi, seg, core_id=0,
                            num_lines=num_lines, spec_enabled=True)


def test_register_singleton_ring(env):
    buf = SpecBuf(8)
    entry = buf.register(make_endpoint(env))
    assert entry.next_index == entry.index  # self-loop
    assert buf.ring_of(1) == [entry]
    assert buf.ring_head(1) is entry


def test_ring_links_same_sqi_entries(env):
    buf = SpecBuf(8)
    entries = [buf.register(make_endpoint(env, endpoint_id=i, sqi=5)) for i in range(3)]
    ring = buf.ring_of(5)
    assert len(ring) == 3
    assert {e.index for e in ring} == {e.index for e in entries}
    # Walking `next` visits all entries exactly once per lap.
    seen = set()
    cursor = ring[0]
    for _ in range(3):
        seen.add(cursor.index)
        cursor = buf.entry(cursor.next_index)
    assert cursor is ring[0] and len(seen) == 3


def test_rings_of_different_sqis_are_disjoint(env):
    buf = SpecBuf(8)
    a = buf.register(make_endpoint(env, endpoint_id=0, sqi=1))
    b = buf.register(make_endpoint(env, endpoint_id=1, sqi=2))
    assert buf.ring_of(1) == [a]
    assert buf.ring_of(2) == [b]
    assert buf.ring_of(3) == []
    assert buf.ring_head(3) is None


def test_offset_rotation(env):
    buf = SpecBuf(8)
    entry = buf.register(make_endpoint(env, num_lines=3))
    targets = []
    for _ in range(7):
        targets.append(entry.target_line.index)
        entry.advance_offset()
    assert targets == [0, 1, 2, 0, 1, 2, 0]


def test_target_line_follows_offset(env):
    buf = SpecBuf(8)
    ep = make_endpoint(env, num_lines=2)
    entry = buf.register(ep)
    assert entry.target_line is ep.lines[0]
    entry.advance_offset()
    assert entry.target_line is ep.lines[1]


def test_capacity_enforced(env):
    buf = SpecBuf(2)
    buf.register(make_endpoint(env, endpoint_id=0))
    buf.register(make_endpoint(env, endpoint_id=1))
    with pytest.raises(RegistrationError):
        buf.register(make_endpoint(env, endpoint_id=2))


def test_entry_latches_initialised(env):
    entry = SpecBuf(4).register(make_endpoint(env))
    assert entry.nfills == 0
    assert entry.delay == 0
    assert entry.failed is False
    assert entry.on_fly is False
