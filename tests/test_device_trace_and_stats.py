"""Cross-cutting checks: device accounting identities and speculative-trace
correctness, across devices, algorithms and seeds."""

import pytest

from repro.eval.runner import Setting, collect_metrics, standard_settings
from repro.spamer.delay import TunedDelay
from repro.system import System
from repro.workloads import make_workload

SCALE = 0.06


def run_system(name, device, algorithm=None, seed=0xC0FFEE, trace=False):
    workload = make_workload(name, scale=SCALE)
    system = System(device=device, algorithm=algorithm, seed=seed, trace=trace)
    workload.build(system)
    system.run_to_completion(limit=200_000_000)
    workload.validate()
    return system, workload


@pytest.mark.parametrize("name", ["incast", "firewall", "FIR"])
@pytest.mark.parametrize("device,algo", [("vl", None), ("spamer", "adapt")])
def test_device_accounting_identities(name, device, algo):
    system, workload = run_system(name, device, algo)
    stats = system.aggregate_device_stats()
    # Identity 1: every attempt resolves to exactly one hit or failure.
    assert stats.get("push_attempts") == stats.get("push_hits") + stats.get(
        "push_failures"
    )
    # Identity 2: hits == delivered messages (each message fills one line).
    assert stats.get("push_hits") == workload.total_messages()
    # Identity 3: split counters tile the totals.
    assert stats.get("push_attempts") == stats.get("ondemand_pushes") + stats.get(
        "spec_pushes"
    )
    assert stats.get("push_failures") == stats.get("ondemand_failures") + stats.get(
        "spec_failures"
    )
    # Identity 4: all prodBuf entries returned, all buffers drained.
    for dev in system.devices:
        assert dev.entries_in_use == 0
        for row in dev.linktab.rows.values():
            assert not row.buffered_data
    # Identity 5: consumer line fills equal hits.
    fills = sum(
        line.fills for ep in system.library.consumers for line in ep.lines
    )
    assert fills == stats.get("push_hits")


def test_every_data_arrival_is_a_push_arrival():
    system, workload = run_system("pipeline", "spamer", "0delay")
    stats = system.aggregate_device_stats()
    assert stats.get("data_arrivals") == workload.total_messages()


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_trace_consistency_under_speculation(seed):
    """Every traced speculative transaction satisfies the Figure 7 event
    ordering and carries no request; counts match device stats."""
    system, workload = run_system("incast", "spamer", "0delay", seed=seed,
                                  trace=True)
    txns = [t for t in system.trace.transactions() if t.line_fill is not None]
    assert len(txns) == workload.total_messages()
    spec = [t for t in txns if t.speculative]
    assert len(spec) == len(txns)  # incast spec endpoints never request
    for t in txns:
        assert t.complete
        assert t.data_arrive is not None
        assert t.line_vacate <= t.line_fill
        assert t.line_fill <= t.first_use


def test_metrics_collection_is_pure():
    """collect_metrics never mutates the system (safe to call twice)."""
    system, workload = run_system("firewall", "vl")
    setting = standard_settings()[0]
    a = collect_metrics(system, workload, setting)
    b = collect_metrics(system, workload, setting)
    assert a == b


@pytest.mark.parametrize("name", ["ping-pong", "incast", "bitonic"])
def test_full_run_determinism_per_seed(name):
    """Identical (workload, device, seed) runs are cycle-identical, and the
    aggregate stat dictionaries match exactly."""

    def fingerprint():
        system, _w = run_system(name, "spamer", TunedDelay(), seed=99)
        return system.env.now, system.aggregate_device_stats().as_dict()

    assert fingerprint() == fingerprint()


def test_latency_stats_sample_count_matches_messages():
    system, workload = run_system("incast", "vl")
    assert system.latency_stats.n == workload.total_messages()
    assert min(system.latency_stats.samples) > 0
