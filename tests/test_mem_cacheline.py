"""Unit tests for the consumer-cacheline state machine."""

import pytest

from repro.errors import DeviceError
from repro.mem.cacheline import ConsumerLine, LineState


def make_line(env):
    return ConsumerLine(env, addr=0x1000, endpoint_id=0, index=0)


def test_line_starts_empty(env):
    line = make_line(env)
    assert line.state is LineState.EMPTY
    assert line.is_empty


def test_fill_then_consume(env):
    line = make_line(env)
    assert line.try_fill("payload", transaction_id=7)
    assert line.state is LineState.VALID
    assert line.fill_txn == 7
    assert line.consume() == "payload"
    assert line.state is LineState.EMPTY
    assert line.fills == 1 and line.vacates == 1


def test_fill_on_valid_line_is_miss(env):
    line = make_line(env)
    assert line.try_fill("first")
    assert not line.try_fill("second")
    assert line.failed_fills == 1
    assert line.consume() == "first"  # original data untouched


def test_consume_empty_line_rejected(env):
    line = make_line(env)
    with pytest.raises(DeviceError):
        line.consume()


def test_vacate_timestamp_tracks_consumes(env):
    line = make_line(env)
    assert line.last_vacate_time == 0  # registration counts as ready
    line.try_fill("x")
    env.timeout(50)
    env.run()
    line.consume()
    assert line.last_vacate_time == 50


def test_state_residency_accounting(env):
    line = make_line(env)
    env.timeout(10)
    env.run()
    line.try_fill("x")           # empty for 10
    env.timeout(30)
    env.run()
    line.consume()               # valid for 30
    env.timeout(5)
    env.run()
    assert line.empty_cycles() == 15
    assert line.valid_cycles() == 30
    assert line.empty_cycles() + line.valid_cycles() == env.now


def test_fill_consume_cycle_invariant(env):
    """fills == vacates after any balanced sequence; residency sums to now."""
    line = make_line(env)
    for i in range(20):
        env.timeout(3)
        env.run()
        assert line.try_fill(i)
        env.timeout(4)
        env.run()
        assert line.consume() == i
    assert line.fills == line.vacates == 20
    assert line.empty_cycles() + line.valid_cycles() == env.now
