"""Tests for the tuned-parameter search (eval/autotune.py)."""

import pytest

from repro.errors import ConfigError
from repro.eval.autotune import SEARCH_SPACE, autotune
from repro.spamer.delay import TunedParams

SCALE = 0.05
SEED = 0xC0FFEE


def test_autotune_rejects_bad_budgets():
    with pytest.raises(ConfigError):
        autotune("ping-pong", max_evaluations=0)
    with pytest.raises(ConfigError):
        autotune("ping-pong", max_rounds=0)


def test_search_space_is_centred_on_paper_defaults():
    paper = TunedParams()
    for coord, values in SEARCH_SPACE.items():
        assert getattr(paper, coord) in values


def test_autotune_memoizes_the_starting_point():
    """current == paper's set, so the second evaluate() is a cache hit —
    one simulation covers both, and the exhausted budget stops the sweep."""
    result = autotune("ping-pong", scale=SCALE, seed=SEED, max_evaluations=1)
    assert result.evaluations == 1
    assert result.best_params == TunedParams()
    assert result.best_score == pytest.approx(result.paper_score)
    assert result.improvement_over_paper == pytest.approx(1.0)


def test_autotune_never_returns_worse_than_paper():
    result = autotune(
        "ping-pong", scale=SCALE, seed=SEED, max_evaluations=6, max_rounds=1
    )
    assert result.evaluations <= 6
    assert result.best_score <= result.paper_score + 1e-9
    assert result.improvement_over_paper >= 1.0 - 1e-9
    assert result.baseline_cycles > 0
    assert result.best_metrics.exec_cycles > 0
    assert result.workload == "ping-pong"


def test_autotune_honours_a_custom_start():
    start = TunedParams(zeta=128)
    result = autotune(
        "ping-pong",
        scale=SCALE,
        seed=SEED,
        start=start,
        max_evaluations=2,
        max_rounds=1,
    )
    # Budget covers exactly start + paper reference; no sweep improvements.
    assert result.evaluations == 2
    assert result.best_params in (start, TunedParams())
