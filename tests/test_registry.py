"""The component registry: round-trips, error reporting, System integration."""

import pytest

from repro.errors import ConfigError
from repro.registry import (
    algorithm_names,
    device_names,
    register_algorithm,
    register_device,
    resolve_algorithm,
    resolve_device,
    unregister_algorithm,
)
from repro.spamer.delay import DelayAlgorithm, TunedDelay


def test_builtin_devices_registered():
    assert "vl" in device_names()
    assert "spamer" in device_names()


def test_builtin_algorithms_registered():
    names = algorithm_names()
    for expected in ("0delay", "adapt", "tuned", "fixed", "never",
                     "history", "perceptron"):
        assert expected in names


def test_parameterized_algorithms_excluded_from_zero_config_list():
    zero_config = algorithm_names(include_parameterized=False)
    assert "fixed" not in zero_config          # needs its delay argument
    # "never" is offered: its by-construction stall is caught by the stall
    # watchdog (SimDeadlockError diagnostics) instead of hanging the run.
    assert "never" in zero_config
    assert "tuned" in zero_config


def test_device_spec_round_trip():
    spec = resolve_device("spamer")
    assert spec.name == "spamer"
    assert spec.accepts_algorithm and spec.accepts_security
    assert spec.default_algorithm == "tuned"
    assert spec.factory.registry_name == "spamer"


def test_algorithm_resolve_round_trip():
    algo = resolve_algorithm("tuned")
    assert isinstance(algo, TunedDelay)
    assert isinstance(algo, DelayAlgorithm)


def test_unknown_device_lists_available():
    with pytest.raises(ConfigError) as exc:
        resolve_device("quantum")
    message = str(exc.value)
    assert "quantum" in message
    assert "vl" in message and "spamer" in message


def test_unknown_algorithm_lists_available():
    with pytest.raises(ConfigError) as exc:
        resolve_algorithm("oracle")
    message = str(exc.value)
    assert "oracle" in message
    assert "tuned" in message and "0delay" in message


def test_duplicate_device_registration_rejected():
    with pytest.raises(ConfigError):
        @register_device("vl")
        class Impostor:  # pragma: no cover - never constructed
            pass


def test_duplicate_algorithm_registration_rejected():
    with pytest.raises(ConfigError):
        @register_algorithm("tuned")
        class Impostor:  # pragma: no cover - never constructed
            pass


def test_register_and_unregister_algorithm():
    @register_algorithm("test-echo", requires_params=True)
    class EchoDelay(DelayAlgorithm):
        name = "test-echo"

        def __init__(self, delay):
            self.delay = delay

        def send_tick(self, entry, now):
            return now + self.delay

        def on_response(self, entry, hit, now):
            pass

    try:
        algo = resolve_algorithm("test-echo", delay=7)
        assert algo.delay == 7
        assert "test-echo" not in algorithm_names(include_parameterized=False)
    finally:
        unregister_algorithm("test-echo")
    assert "test-echo" not in algorithm_names()


def test_system_rejects_algorithm_for_non_speculating_device():
    from repro import System

    with pytest.raises(ConfigError) as exc:
        System(device="vl", algorithm="tuned")
    assert "does not take one" in str(exc.value)


def test_config_default_device_resolves_through_registry():
    from repro.config import SystemConfig

    with pytest.raises(ConfigError):
        SystemConfig(default_device="quantum")
    with pytest.raises(ConfigError):
        SystemConfig(default_algorithm="oracle")


def test_system_uses_config_default_device():
    from repro import System
    from repro.config import SystemConfig

    system = System(config=SystemConfig(default_device="spamer"))
    assert system.device_name == "spamer"
    assert isinstance(system.device.algorithm, TunedDelay)
