"""Unit tests for the event primitives."""

import pytest

from repro.errors import SchedulingError
from repro.sim.event import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Environment


def test_event_starts_pending(env):
    ev = env.event("e")
    assert not ev.triggered
    assert not ev.processed
    with pytest.raises(SchedulingError):
        _ = ev.value


def test_succeed_carries_value(env):
    ev = env.event()
    ev.succeed(42)
    assert ev.triggered
    assert ev.ok
    assert ev.value == 42


def test_double_trigger_rejected(env):
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SchedulingError):
        ev.succeed(2)
    with pytest.raises(SchedulingError):
        ev.fail(RuntimeError("late"))


def test_fail_requires_exception(env):
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_unhandled_failure_surfaces(env):
    ev = env.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_defused_failure_is_silent(env):
    ev = env.event()
    ev.fail(ValueError("boom"))
    ev.defuse()
    env.run()  # must not raise


def test_callbacks_run_in_subscription_order(env):
    order = []
    ev = env.event()
    ev.subscribe(lambda e: order.append(1))
    ev.subscribe(lambda e: order.append(2))
    ev.subscribe(lambda e: order.append(3))
    ev.succeed()
    env.run()
    assert order == [1, 2, 3]


def test_subscribe_after_processed_still_fires(env):
    ev = env.event()
    ev.succeed("x")
    env.run()
    assert ev.processed
    got = []
    ev.subscribe(lambda e: got.append(e.value))
    env.run()
    assert got == ["x"]


def test_timeout_fires_at_delay(env):
    ev = Timeout(env, 10, value="done")
    fired_at = []
    ev.subscribe(lambda e: fired_at.append(env.now))
    env.run()
    assert fired_at == [10]
    assert ev.value == "done"


def test_timeout_rejects_negative_delay(env):
    with pytest.raises(SchedulingError):
        Timeout(env, -1)


def test_zero_delay_timeout(env):
    ev = env.timeout(0)
    env.run()
    assert ev.processed
    assert env.now == 0


def test_anyof_fires_on_first_child(env):
    slow = env.timeout(100)
    fast = env.timeout(5)
    any_ev = AnyOf(env, [slow, fast])
    env.run(until=10)
    assert any_ev.triggered
    assert fast in any_ev.value
    assert slow not in any_ev.value


def test_anyof_empty_fires_immediately(env):
    any_ev = AnyOf(env, [])
    assert any_ev.triggered
    assert any_ev.value == {}


def test_allof_waits_for_every_child(env):
    a, b = env.timeout(5), env.timeout(50)
    all_ev = AllOf(env, [a, b])
    env.run(until=10)
    assert not all_ev.triggered
    env.run()
    assert all_ev.triggered
    assert set(all_ev.value) == {a, b}


def test_allof_propagates_failure(env):
    good = env.timeout(5)
    bad = env.event()
    all_ev = AllOf(env, [good, bad])
    bad.fail(RuntimeError("child failed"))
    all_ev.defuse()
    env.run()
    assert all_ev.triggered
    assert not all_ev.ok


def test_anyof_propagates_failure(env):
    bad = env.event()
    any_ev = AnyOf(env, [bad, env.timeout(100)])
    bad.fail(RuntimeError("child failed"))
    any_ev.defuse()
    env.run(until=1)
    assert any_ev.triggered
    assert not any_ev.ok
