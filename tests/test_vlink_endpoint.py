"""Unit tests for producer/consumer endpoints."""

import pytest

from repro.errors import RegistrationError
from repro.mem.address import Segment
from repro.mem.cacheline import LineState
from repro.vlink.endpoint import ConsumerEndpoint, ProducerEndpoint


def make_consumer(env, num_lines=4, spec=False):
    seg = Segment(0x1000, 4096)
    return ConsumerEndpoint(env, 0, sqi=1, segment=seg, core_id=0,
                            num_lines=num_lines, spec_enabled=spec)


def test_producer_sequence_numbers():
    prod = ProducerEndpoint(0, sqi=1, segment=Segment(0x1000, 4096), core_id=0)
    assert [prod.take_seq() for _ in range(3)] == [0, 1, 2]


def test_consumer_line_addresses_follow_segment(env):
    cons = make_consumer(env)
    assert [line.addr for line in cons.lines] == [0x1000, 0x1040, 0x1080, 0x10C0]


def test_round_robin_advance(env):
    cons = make_consumer(env, num_lines=3)
    assert cons.current_line.index == 0
    cons.advance()
    assert cons.current_line.index == 1
    cons.advance()
    cons.advance()
    assert cons.current_line.index == 0  # wrapped


def test_oldest_valid_line_scans_forward(env):
    cons = make_consumer(env)
    assert cons.oldest_valid_line() is None
    cons.lines[2].try_fill("x")
    found = cons.oldest_valid_line()
    assert found is cons.lines[2]
    cons.retarget(found)
    assert cons.current_line is cons.lines[2]


def test_oldest_valid_prefers_round_robin_order(env):
    cons = make_consumer(env)
    cons.lines[1].try_fill("a")
    cons.lines[3].try_fill("b")
    cons.advance()
    cons.advance()  # rr at 2
    assert cons.oldest_valid_line() is cons.lines[3]  # first VALID at/after rr


def test_endpoint_cycle_aggregation(env):
    cons = make_consumer(env, num_lines=2)
    cons.lines[0].try_fill("x")
    env.timeout(10)
    env.run()
    assert cons.valid_cycles() == 10
    assert cons.empty_cycles() == 10  # line 1 stayed empty


def test_too_many_lines_rejected(env):
    with pytest.raises(RegistrationError):
        make_consumer(env, num_lines=65)  # only 64 fit a 4 KiB page


def test_zero_lines_rejected(env):
    with pytest.raises(RegistrationError):
        make_consumer(env, num_lines=0)
