"""Unit tests for the address-space layout and device windows."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, RegistrationError
from repro.mem.address import (
    AddressSpace,
    CONSBUF_WINDOW_BASE,
    PAGE_BYTES,
    Segment,
    SPECBUF_WINDOW_BASE,
)
from repro.units import CACHELINE_BYTES, MiB


def test_segment_validation():
    with pytest.raises(ConfigError):
        Segment(-1, 100)
    with pytest.raises(ConfigError):
        Segment(0, 0)


def test_segment_line_addressing():
    seg = Segment(PAGE_BYTES, PAGE_BYTES)
    assert seg.line_addr(0) == PAGE_BYTES
    assert seg.line_addr(1) == PAGE_BYTES + CACHELINE_BYTES
    assert seg.num_lines == PAGE_BYTES // CACHELINE_BYTES
    with pytest.raises(RegistrationError):
        seg.line_addr(seg.num_lines)


def test_allocations_are_page_aligned_and_disjoint():
    space = AddressSpace(MiB(4))
    segs = [space.alloc_endpoint_buffer(8) for _ in range(16)]
    for seg in segs:
        assert seg.base % PAGE_BYTES == 0
    for a in segs:
        for b in segs:
            if a is not b:
                assert a.end <= b.base or b.end <= a.base


def test_allocation_exhaustion():
    space = AddressSpace(2 * PAGE_BYTES)
    space.alloc_endpoint_buffer(1)  # uses the second (and last) page
    with pytest.raises(RegistrationError):
        space.alloc_endpoint_buffer(1)


def test_page_zero_never_allocated():
    """The null page stays unmapped — a zero consTgt means 'no request'."""
    seg = AddressSpace(MiB(1)).alloc_endpoint_buffer(1)
    assert seg.base >= PAGE_BYTES


def test_allocation_rejects_zero_lines():
    with pytest.raises(RegistrationError):
        AddressSpace(MiB(1)).alloc_endpoint_buffer(0)


def test_device_window_classification():
    assert AddressSpace.is_consbuf_window(CONSBUF_WINDOW_BASE)
    assert AddressSpace.is_specbuf_window(SPECBUF_WINDOW_BASE)
    assert not AddressSpace.is_consbuf_window(SPECBUF_WINDOW_BASE)
    assert not AddressSpace.is_specbuf_window(0x1000)


@given(sqi=st.integers(min_value=0, max_value=1000))
@settings(max_examples=50, deadline=None)
def test_sqi_window_roundtrip(sqi):
    """Property: the SQI encoded in either window decodes back."""
    assert AddressSpace.sqi_of_window_addr(AddressSpace.consbuf_window_addr(sqi)) == sqi
    assert AddressSpace.sqi_of_window_addr(AddressSpace.specbuf_window_addr(sqi)) == sqi


def test_non_window_address_decodes_to_none():
    assert AddressSpace.sqi_of_window_addr(0x2000) is None


def test_too_small_dram_rejected():
    with pytest.raises(ConfigError):
        AddressSpace(PAGE_BYTES - 1)
