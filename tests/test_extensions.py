"""Tests for the extensions beyond the paper's minimum: learned delay
algorithms, multi-router systems, autotuning and the CLI."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.autotune import SEARCH_SPACE, autotune
from repro.eval.runner import Setting, run_workload, standard_settings
from repro.mem.address import Segment
from repro.spamer.delay import TunedParams, algorithm_by_name
from repro.spamer.learned import HistoryDelay, PerceptronDelay
from repro.spamer.specbuf import SpecEntry
from repro.system import System
from repro.vlink.endpoint import ConsumerEndpoint

SCALE = 0.06


@pytest.fixture
def entry(env):
    ep = ConsumerEndpoint(env, 0, 1, Segment(0x1000, 4096), 0, 4, spec_enabled=True)
    return SpecEntry(0, ep)


# -------------------------------------------------------------- HistoryDelay
def test_history_pushes_immediately_without_history(entry):
    algo = HistoryDelay()
    assert algo.send_tick(entry, 500) == 500


def test_history_learns_interval(entry):
    algo = HistoryDelay(smoothing=1.0, margin=0.0)
    algo.on_response(entry, hit=True, now=1000)
    algo.on_response(entry, hit=True, now=1200)  # interval 200
    tick = algo.send_tick(entry, 1210)
    assert tick == 1200 + 200  # planned at last_success + ewma


def test_history_failures_back_off_without_corrupting_ewma(entry):
    algo = HistoryDelay(smoothing=1.0, margin=0.0, backoff_step=50)
    algo.on_response(entry, hit=True, now=1000)
    algo.on_response(entry, hit=True, now=1200)
    algo.on_response(entry, hit=False, now=1250)
    algo.on_response(entry, hit=False, now=1300)
    tick = algo.send_tick(entry, 1310)
    assert tick == 1200 + 200 + 2 * 50  # ewma intact, backoff added
    algo.on_response(entry, hit=True, now=1500)
    assert algo._entry_state(entry).consecutive_failures == 0


def test_history_validation():
    with pytest.raises(ConfigError):
        HistoryDelay(smoothing=0.0)
    with pytest.raises(ConfigError):
        HistoryDelay(margin=1.0)
    with pytest.raises(ConfigError):
        HistoryDelay(backoff_step=0)


def test_history_state_is_per_entry(env):
    algo = HistoryDelay()
    eps = [
        ConsumerEndpoint(env, i, 1, Segment(0x1000 * (i + 1), 4096), 0, 2, True)
        for i in range(2)
    ]
    entries = [SpecEntry(i, eps[i]) for i in range(2)]
    algo.on_response(entries[0], hit=True, now=100)
    assert algo._entry_state(entries[1]).samples == 0


# ------------------------------------------------------------ PerceptronDelay
def test_perceptron_starts_aggressive(entry):
    algo = PerceptronDelay()
    assert algo.send_tick(entry, 100) == 100


def test_perceptron_trains_on_mistakes(entry):
    algo = PerceptronDelay(learning_rate=1.0)
    algo.send_tick(entry, 0)
    state = algo._entry_state(entry)
    bias_before = state.bias
    algo.on_response(entry, hit=False, now=10)  # aggressive push missed
    assert state.bias < bias_before  # learns to be less aggressive


def test_perceptron_no_update_on_correct_prediction(entry):
    algo = PerceptronDelay(learning_rate=1.0)
    algo.send_tick(entry, 0)
    algo.on_response(entry, hit=True, now=10)  # aggressive and it hit
    assert algo._entry_state(entry).bias == 0.0


def test_perceptron_validation():
    with pytest.raises(ConfigError):
        PerceptronDelay(learning_rate=0)


@pytest.mark.parametrize("name", ["history", "perceptron"])
def test_learned_algorithms_run_end_to_end(name):
    setting = Setting(f"SPAMeR({name})", "spamer", lambda: algorithm_by_name(name))
    m = run_workload("incast", setting, scale=SCALE, limit=100_000_000)
    assert m.messages_delivered == m.messages_produced > 0
    assert m.spec_pushes > 0


def test_factory_knows_learned_algorithms():
    assert isinstance(algorithm_by_name("history"), HistoryDelay)
    assert isinstance(algorithm_by_name("perceptron"), PerceptronDelay)


# ---------------------------------------------------------------- multi-router
def test_multirouter_shards_sqis():
    cfg = SystemConfig(num_routers=2)
    system = System(config=cfg, device="vl")
    sqis = [system.library.create_queue() for _ in range(4)]
    owners = {s: system.device_for(s) for s in sqis}
    assert len({id(d) for d in owners.values()}) == 2
    for s, d in owners.items():
        assert s in d.linktab


def test_multirouter_runs_workload_correctly():
    cfg = SystemConfig(num_routers=4)
    setting = standard_settings()[1]  # 0delay
    m = run_workload("halo", setting, scale=SCALE, config=cfg, limit=100_000_000)
    assert m.messages_delivered == m.messages_produced


def test_multirouter_aggregates_stats():
    cfg = SystemConfig(num_routers=2)
    setting = standard_settings()[0]
    m = run_workload("firewall", setting, scale=SCALE, config=cfg,
                     limit=100_000_000)
    assert m.push_attempts >= m.messages_delivered


def test_multirouter_relieves_buffer_pressure():
    """With tiny prodBufs, more routers mean more aggregate entries."""
    setting = standard_settings()[1]
    cycles = {}
    for routers in (1, 4):
        cfg = SystemConfig(num_routers=routers, prodbuf_entries=8)
        m = run_workload("FIR", setting, scale=SCALE, config=cfg,
                         limit=100_000_000)
        cycles[routers] = m.exec_cycles
    assert cycles[4] <= cycles[1]


def test_invalid_router_count_rejected():
    with pytest.raises(ConfigError):
        SystemConfig(num_routers=0)


# -------------------------------------------------------------------- autotune
def test_autotune_respects_budget():
    result = autotune("ping-pong", scale=SCALE, max_evaluations=4)
    assert result.evaluations <= 4
    assert result.best_params is not None


def test_autotune_never_worse_than_paper_start():
    result = autotune("incast", scale=SCALE, max_evaluations=8)
    assert result.best_score <= result.paper_score + 1e-9
    assert result.improvement_over_paper >= 1.0


def test_autotune_search_space_includes_paper_values():
    paper = TunedParams()
    assert paper.zeta in SEARCH_SPACE["zeta"]
    assert paper.tau in SEARCH_SPACE["tau"]
    assert paper.delta in SEARCH_SPACE["delta"]


def test_autotune_validation():
    with pytest.raises(ConfigError):
        autotune("incast", max_evaluations=0)


# ------------------------------------------------------------------------- CLI
def test_cli_table_commands(capsys):
    from repro.cli import main

    assert main(["table1"]) == 0
    assert "16xAArch64" in capsys.readouterr().out
    assert main(["table2"]) == 0
    assert "bitonic" in capsys.readouterr().out
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "ping-pong" in out and "perceptron" in out


def test_cli_run_command(capsys):
    from repro.cli import main

    assert main(["run", "ping-pong", "--setting", "0delay", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "execution" in out and "speculative pushes" in out


def test_cli_area_power(capsys):
    from repro.cli import main

    assert main(["area"]) == 0
    assert "0.1700" in capsys.readouterr().out
    assert main(["power"]) == 0
    assert "47.75" in capsys.readouterr().out


def test_cli_rejects_unknown_workload():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["run", "not-a-workload"])
