"""Golden-trace determinism: the obs documents are byte-stable.

Three guarantees, per ISSUE 4's acceptance criteria:

* the committed fixture (``tests/golden/obs_trace_pingpong.json``) pins the
  exact bytes of a small two-cell trace — any drift in event content,
  ordering, or serialization fails loudly;
* the fig8 smoke matrix exports byte-identical trace/metrics/JSONL
  documents for ``--jobs 1`` and ``--jobs 4`` (submission-order merge);
* two invocations of the same request list produce the same bytes
  (no wall-clock, PID, or dict-order leakage).
"""

from pathlib import Path

from repro.obs.runner import (
    ObsRequest,
    PID_BLOCK,
    run_obs,
    smoke_requests,
)

GOLDEN = Path(__file__).parent / "golden" / "obs_trace_pingpong.json"

#: The fixture's request list. Regenerate the fixture after an intentional
#: format change with::
#:
#:     PYTHONPATH=src python -c "from tests.test_obs_golden import regenerate; regenerate()"
GOLDEN_REQUESTS = (
    ObsRequest("ping-pong", "vl", scale=0.01, seed=0xC0FFEE, pid_base=0),
    ObsRequest("ping-pong", "tuned", scale=0.01, seed=0xC0FFEE,
               pid_base=PID_BLOCK),
)

#: Scale for the in-memory smoke-matrix comparison: big enough to exercise
#: retries and both devices, small enough for CI.
SMOKE_COMPARE_SCALE = 0.02


def regenerate() -> None:
    """Rewrite the golden fixture (only after an intentional change)."""
    text = run_obs(list(GOLDEN_REQUESTS), jobs=1).trace_json()
    GOLDEN.write_text(text + "\n")


def test_trace_matches_committed_golden_bytes():
    result = run_obs(list(GOLDEN_REQUESTS), jobs=1)
    assert result.trace_json() + "\n" == GOLDEN.read_text()


def test_smoke_matrix_is_jobs_invariant():
    requests = smoke_requests(scale=SMOKE_COMPARE_SCALE)
    serial = run_obs(requests, jobs=1)
    parallel = run_obs(requests, jobs=4)
    assert serial.trace_json() == parallel.trace_json()
    assert serial.metrics_json() == parallel.metrics_json()
    assert serial.jsonl() == parallel.jsonl()


def test_repeat_invocations_are_byte_identical():
    requests = smoke_requests(scale=SMOKE_COMPARE_SCALE)
    first = run_obs(requests, jobs=1)
    second = run_obs(requests, jobs=1)
    assert first.trace_json() == second.trace_json()
    assert first.metrics_json() == second.metrics_json()
    assert first.jsonl() == second.jsonl()
