"""Tests for the bitonic sorting network implementation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.sort import bitonic_sort, compare_exchange_count, is_power_of_two


def test_power_of_two_detection():
    assert is_power_of_two(1)
    assert is_power_of_two(64)
    assert not is_power_of_two(0)
    assert not is_power_of_two(48)


def test_sorts_known_sequence():
    assert bitonic_sort([3, 1, 4, 1, 5, 9, 2, 6]) == [1, 1, 2, 3, 4, 5, 6, 9]


def test_descending_order():
    assert bitonic_sort([3, 1, 4, 1], ascending=False) == [4, 3, 1, 1]


def test_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        bitonic_sort([1, 2, 3])


def test_input_not_mutated():
    data = [5, 2, 8, 1]
    bitonic_sort(data)
    assert data == [5, 2, 8, 1]


@given(
    st.lists(st.integers(min_value=-10**9, max_value=10**9), min_size=1, max_size=7)
    .map(lambda xs: xs * ((2 ** (len(xs) - 1).bit_length()) // len(xs) + 1))
    .map(lambda xs: xs[: 2 ** ((len(xs)).bit_length() - 1)])
)
@settings(max_examples=100, deadline=None)
def test_sorts_any_power_of_two_input(values):
    assert is_power_of_two(len(values))
    assert bitonic_sort(values) == sorted(values)


@given(st.integers(min_value=0, max_value=8))
@settings(max_examples=9, deadline=None)
def test_compare_exchange_count_formula(log_n):
    """CE count is (n/2) * log(n) * (log(n)+1) / 2 — the network's size."""
    n = 2 ** log_n
    if n == 0:
        return
    expected = (n // 2) * log_n * (log_n + 1) // 2
    assert compare_exchange_count(n) == expected


def test_compare_exchange_count_rejects_bad_length():
    with pytest.raises(ValueError):
        compare_exchange_count(12)


def test_sort_handles_duplicates_and_negatives():
    data = [0, -5, 3, -5, 3, 0, 7, -1]
    assert bitonic_sort(data) == sorted(data)
