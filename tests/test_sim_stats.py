"""Unit and property tests for the statistics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Environment
from repro.sim.stats import Counter, RunningStats, StateTimer, geometric_mean


# -------------------------------------------------------------------- Counter
def test_counter_accumulates():
    c = Counter()
    c.add("hits")
    c.add("hits", 4)
    assert c.get("hits") == 5
    assert c.get("misses") == 0
    assert c.as_dict() == {"hits": 5}


# ------------------------------------------------------------------ StateTimer
def test_state_timer_accumulates_per_state(env):
    timer = StateTimer(env, "empty")
    env.timeout(10)
    env.run()
    timer.transition("valid")
    env.timeout(30)
    env.run()
    timer.transition("empty")
    assert timer.time_in("empty") == 10
    assert timer.time_in("valid") == 30


def test_state_timer_open_interval_counted(env):
    timer = StateTimer(env, "empty")
    env.timeout(7)
    env.run()
    assert timer.time_in("empty") == 7
    assert timer.time_in("empty", up_to_now=False) == 0


def test_state_timer_close(env):
    timer = StateTimer(env, "a")
    env.timeout(5)
    env.run()
    timer.close()
    assert timer.time_in("a", up_to_now=False) == 5


def test_state_timer_total_is_elapsed(env):
    timer = StateTimer(env, "a")
    for state, dt in (("b", 3), ("a", 9), ("b", 2)):
        env.timeout(dt)
        env.run()
        timer.transition(state)
    assert timer.time_in("a") + timer.time_in("b") == env.now


# ---------------------------------------------------------------- RunningStats
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=200))
@settings(max_examples=50, deadline=None)
def test_running_stats_matches_numpy(values):
    rs = RunningStats()
    for v in values:
        rs.add(v)
    assert rs.n == len(values)
    assert rs.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
    assert rs.variance == pytest.approx(np.var(values, ddof=1), rel=1e-6, abs=1e-4)
    assert rs.minimum == min(values)
    assert rs.maximum == max(values)


def test_running_stats_empty():
    rs = RunningStats()
    assert rs.mean == 0.0
    assert rs.variance == 0.0


def test_running_stats_percentiles():
    rs = RunningStats(keep_samples=True)
    for v in range(101):
        rs.add(float(v))
    assert rs.percentile(0) == 0
    assert rs.percentile(50) == 50
    assert rs.percentile(100) == 100
    with pytest.raises(ValueError):
        rs.percentile(101)


def test_percentile_without_samples_raises():
    rs = RunningStats()
    rs.add(1.0)
    with pytest.raises(ValueError):
        rs.percentile(50)


# -------------------------------------------------------------- geometric_mean
def test_geometric_mean_known_value():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)


def test_geometric_mean_rejects_bad_input():
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])
    with pytest.raises(ValueError):
        geometric_mean([-1.0])


@given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_geometric_mean_between_min_and_max(values):
    g = geometric_mean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9
    # And matches the closed form.
    assert g == pytest.approx(
        math.exp(sum(math.log(v) for v in values) / len(values))
    )
