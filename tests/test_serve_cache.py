"""Content-addressed result cache: key stability, sensitivity, storage.

The cache-correctness claim is an equivalence: two requests share a cache
key **iff** they would produce byte-identical pickled
:class:`~repro.eval.metrics.RunMetrics` (bit-wise determinism makes the
forward direction true; these tests pin both directions plus the
conservative invalidators — key version and registry generation).
"""

import dataclasses
import pickle

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.parallel import (
    CACHE_PICKLE_PROTOCOL,
    RunRequest,
    execute_request,
)
from repro.eval.runner import setting_by_name, tuned_setting
from repro.spamer.delay import TunedParams
from repro.serve import ResultCache, metrics_bytes
from repro.workloads.arrival import ArrivalSpec

SCALE = 0.02
SEED = 0xC0FFEE


def _request(**overrides) -> RunRequest:
    request = RunRequest.from_setting(
        "ping-pong", setting_by_name("tuned"), scale=SCALE, seed=SEED
    )
    return dataclasses.replace(request, **overrides) if overrides else request


# ------------------------------------------------------------------ key shape
def test_cache_key_is_stable_sha256_hex():
    key = _request().cache_key()
    assert len(key) == 64
    assert int(key, 16) >= 0
    assert key == _request().cache_key()


def test_equal_keys_mean_byte_identical_metrics():
    a, b = _request(), _request()
    assert a.cache_key() == b.cache_key()
    blob_a = pickle.dumps(execute_request(a), protocol=CACHE_PICKLE_PROTOCOL)
    blob_b = pickle.dumps(execute_request(b), protocol=CACHE_PICKLE_PROTOCOL)
    assert blob_a == blob_b


# -------------------------------------------------------------- sensitivity
@pytest.mark.parametrize(
    "overrides",
    [
        {"workload": "incast"},
        {"device": "vlrd"},
        {"algorithm": None},
        {"label": "renamed"},
        {"scale": SCALE * 2},
        {"seed": SEED + 1},
        {"config": SystemConfig()},
        {"limit": 10_000_000},
        {"validate": False},
        {"verify": True},
        {"arrival": ArrivalSpec.make("poisson", rate=0.001)},
        {"scheduler": "calendar"},
    ],
    ids=lambda o: next(iter(o)),
)
def test_every_request_field_changes_the_key(overrides):
    assert _request(**overrides).cache_key() != _request().cache_key()


def test_any_config_field_change_changes_the_key():
    base_key = _request(config=SystemConfig()).cache_key()
    assert (
        _request(config=SystemConfig(bus_latency=37)).cache_key() != base_key
    )
    assert (
        _request(config=SystemConfig(burst_k=2)).cache_key() != base_key
    )
    # Same values, independently constructed: same key.
    assert _request(config=SystemConfig()).cache_key() == base_key


def test_parameterized_factory_changes_the_key():
    paper = tuned_setting(TunedParams())
    tweaked = tuned_setting(TunedParams(zeta=128))
    base = _request(algorithm=paper.algorithm, label=None)
    same = _request(algorithm=tuned_setting(TunedParams()).algorithm,
                    label=None)
    # Factories canonicalize by class path + field values: equal values,
    # independently constructed, share a key; any field change breaks it.
    assert base.cache_key() == same.cache_key()
    assert base.cache_key() != _request(
        algorithm=tweaked.algorithm, label=None
    ).cache_key()
    assert base.cache_key() != _request(algorithm=None, label=None).cache_key()


def test_lambda_algorithm_is_rejected():
    request = _request(algorithm=lambda: None)
    with pytest.raises(ConfigError):
        request.cache_key()


def test_key_version_is_part_of_the_key(monkeypatch):
    base = _request().cache_key()
    monkeypatch.setattr("repro.eval.parallel.CACHE_KEY_VERSION", 2)
    assert _request().cache_key() != base


def test_registry_generation_is_part_of_the_key(monkeypatch):
    base = _request().cache_key()
    import repro.registry as registry

    generation = registry.registry_generation()
    monkeypatch.setattr(registry, "registry_generation",
                        lambda: generation + 1)
    assert _request().cache_key() != base


# ----------------------------------------------------------------- storage
def test_result_cache_round_trip_is_byte_exact():
    cache = ResultCache()
    request = _request()
    metrics = execute_request(request)
    key = request.cache_key()
    assert cache.lookup(request) is None
    assert cache.misses == 1
    cache.put(key, metrics)
    assert cache.lookup(request) == metrics
    assert cache.contains(key)
    assert len(cache) == 1
    assert cache.get_bytes(key) == metrics_bytes(metrics)
    assert cache.get(key) == metrics
    assert cache.hits >= 1
    assert 0.0 < cache.hit_rate <= 1.0
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["stores"] == 1
    assert "hit_rate" in stats


def test_result_cache_persists_through_its_directory(tmp_path):
    request = _request()
    metrics = execute_request(request)
    key = request.cache_key()
    ResultCache(tmp_path).put(key, metrics)
    # A fresh instance over the same directory serves the same bytes.
    reopened = ResultCache(tmp_path)
    assert reopened.get_bytes(key) == metrics_bytes(metrics)
    assert reopened.get(key) == metrics


def test_metrics_bytes_pins_the_pickle_protocol():
    metrics = execute_request(_request())
    assert metrics_bytes(metrics) == pickle.dumps(
        metrics, protocol=CACHE_PICKLE_PROTOCOL
    )
