"""End-to-end property tests: random mini-workloads over the full stack.

Hypothesis generates random queue shapes (M:N), message counts, compute
times and delay algorithms; every generated system must

* terminate (no deadlock) within a generous cycle budget,
* conserve messages (each delivered exactly once),
* preserve per-producer FIFO on single-consumer VL queues,
* keep device accounting consistent (hits + failures == attempts, buffers
  drained, credits returned).
"""

from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.spamer.delay import AdaptiveDelay, TunedDelay, ZeroDelay
from repro.system import System


algorithms = st.sampled_from([None, ZeroDelay, AdaptiveDelay, TunedDelay])


def run_mn_queue(
    producers: int,
    consumers: int,
    per_producer: int,
    prod_compute: int,
    cons_compute: int,
    algorithm,
    seed: int,
):
    """Build one M:N queue with the given shape and run it to completion."""
    device = "vl" if algorithm is None else "spamer"
    system = System(
        config=SystemConfig(num_cores=producers + consumers),
        device=device,
        algorithm=algorithm() if algorithm else None,
        seed=seed,
    )
    lib = system.library
    q = lib.create_queue()
    prods = [lib.open_producer(q, core_id=i) for i in range(producers)]
    conss = [
        lib.open_consumer(q, core_id=producers + i) for i in range(consumers)
    ]
    total = producers * per_producer
    state = {"consumed": 0}
    received = []

    def make_producer(pid):
        def producer(ctx):
            for i in range(per_producer):
                yield from ctx.push(prods[pid], (pid, i))
                yield from ctx.compute(prod_compute)

        return producer

    def make_consumer(cid):
        def consumer(ctx):
            while True:
                msg = yield from ctx.pop_until(
                    conss[cid], lambda: state["consumed"] >= total
                )
                if msg is None:
                    return
                state["consumed"] += 1
                received.append(msg.payload)
                yield from ctx.compute(cons_compute)

        return consumer

    for pid in range(producers):
        system.spawn(pid, make_producer(pid), f"p{pid}")
    for cid in range(consumers):
        system.spawn(producers + cid, make_consumer(cid), f"c{cid}")
    system.run_to_completion(limit=200_000_000)
    return system, received


@given(
    producers=st.integers(min_value=1, max_value=3),
    consumers=st.integers(min_value=1, max_value=3),
    per_producer=st.integers(min_value=1, max_value=25),
    prod_compute=st.integers(min_value=1, max_value=600),
    cons_compute=st.integers(min_value=1, max_value=600),
    algorithm=algorithms,
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_random_mn_queue_conserves_and_terminates(
    producers, consumers, per_producer, prod_compute, cons_compute, algorithm, seed
):
    system, received = run_mn_queue(
        producers, consumers, per_producer, prod_compute, cons_compute,
        algorithm, seed,
    )
    expected = sorted((p, i) for p in range(producers) for i in range(per_producer))
    assert sorted(received) == expected

    stats = system.device.stats
    assert stats.get("push_hits") + stats.get("push_failures") == stats.get(
        "push_attempts"
    )
    assert stats.get("push_hits") == len(expected)
    # Every buffering queue drained and every prodBuf entry returned.
    for row in system.device.linktab.rows.values():
        assert not row.buffered_data
    assert system.device.entries_in_use == 0


@given(
    per_producer=st.integers(min_value=1, max_value=40),
    prod_compute=st.integers(min_value=1, max_value=400),
    cons_compute=st.integers(min_value=1, max_value=400),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_vl_single_consumer_queue_is_fifo(per_producer, prod_compute, cons_compute, seed):
    """On-demand 1:1 delivery preserves producer order."""
    _system, received = run_mn_queue(
        1, 1, per_producer, prod_compute, cons_compute, None, seed
    )
    assert received == [(0, i) for i in range(per_producer)]


@given(
    per_producer=st.integers(min_value=1, max_value=30),
    cons_compute=st.integers(min_value=1, max_value=400),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_spamer_reorders_only_under_push_failures(per_producer, cons_compute, seed):
    """A missed speculative push re-enters the mapping pipeline *behind*
    newer packets (Figure 5), so reordering is possible — but only when a
    push actually failed.  Failure-free runs deliver in exact FIFO order."""
    system, received = run_mn_queue(
        1, 1, per_producer, 10, cons_compute, ZeroDelay, seed
    )
    if system.device.stats.get("push_failures") == 0:
        assert received == [(0, i) for i in range(per_producer)]
    else:
        assert sorted(received) == [(0, i) for i in range(per_producer)]
