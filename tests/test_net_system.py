"""End-to-end system tests on NoC topologies + config validation.

The golden-fixture suites (test_ideal_device, test_obs_golden) pin the
default single-bus model bit-for-bit; this file covers what they cannot:
whole workloads running over mesh/ring/crossbar fabrics, multi-SRD
sharding, and the new configuration error surfaces.
"""

import dataclasses

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.runner import run_workload, setting_by_name

TOPOLOGIES = ["mesh", "ring", "crossbar"]
SETTINGS = ["vl", "tuned"]


def run(topology, setting="tuned", verify=True, **overrides):
    config = SystemConfig(topology=topology, **overrides)
    return run_workload(
        "ping-pong", setting_by_name(setting), scale=0.1, config=config,
        verify=verify,
    )


# ------------------------------------------------------------- end-to-end
@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("setting", SETTINGS)
def test_workload_completes_verified_on_noc(topology, setting):
    metrics = run(topology, setting=setting)
    assert metrics.messages_delivered == metrics.messages_produced > 0
    assert metrics.extra["net_links"] > 0
    assert 0.0 <= metrics.extra["net_utilization"] <= 1.0


def test_default_config_is_single_bus_and_reports_no_links():
    config = SystemConfig()
    assert config.topology == "single-bus"
    metrics = run_workload(
        "ping-pong", setting_by_name("tuned"), scale=0.1, config=config
    )
    # Bus-model metrics carry no net extras — the byte-identity contract
    # for everything downstream (goldens, JSON reports).
    assert "net_links" not in metrics.extra
    assert "net_utilization" not in metrics.extra


def test_explicit_single_bus_identical_to_default():
    default = run_workload("ping-pong", setting_by_name("tuned"), scale=0.1)
    explicit = run_workload(
        "ping-pong", setting_by_name("tuned"), scale=0.1,
        config=SystemConfig(topology="single-bus"),
    )
    assert dataclasses.asdict(default) == dataclasses.asdict(explicit)


def test_noc_distance_slows_delivery_vs_bus():
    # halo on 16 cores: mesh routes pay per-hop latency the distance-free
    # bus never sees, so the mesh run cannot be faster at equal occupancy.
    bus = run_workload("halo", setting_by_name("vl"), scale=0.1)
    mesh = run_workload(
        "halo", setting_by_name("vl"), scale=0.1,
        config=SystemConfig(topology="mesh"),
    )
    assert mesh.exec_cycles != bus.exec_cycles
    assert mesh.extra["net_wait_cycles"] >= 0


# ----------------------------------------------------------- SRD sharding
@pytest.mark.parametrize("num_srds", [2, 4])
def test_multi_srd_sharding_conserves_messages(num_srds):
    metrics = run("mesh", num_srds=num_srds)
    assert metrics.messages_delivered == metrics.messages_produced > 0


def test_queues_partition_across_shards():
    from repro.system import System

    system = System(
        config=SystemConfig(topology="crossbar", num_srds=2), device="spamer"
    )
    assert [d.srd_index for d in system.devices] == [0, 1]
    sqi_a = system.library.create_queue()
    sqi_b = system.library.create_queue()
    assert system.device_for(sqi_a) is not system.device_for(sqi_b)
    assert system.device_for(sqi_a) is system.devices[sqi_a % 2]


def test_num_routers_alias_builds_shards():
    from repro.system import System

    system = System(config=SystemConfig(num_routers=2), device="vl")
    assert len(system.devices) == 2
    assert SystemConfig(num_routers=2).effective_srds == 2


def test_sharded_run_aggregates_stats_across_devices():
    metrics = run("crossbar", setting="tuned", num_srds=4)
    assert metrics.push_attempts > 0  # summed over all four shards


# ------------------------------------------------------------ validation
def test_zero_occupancy_with_multiple_channels_rejected():
    # Regression: bus_occupancy=0 with bus_channels>1 used to build a
    # "contended" multi-channel bus whose channels could never be told
    # apart, silently corrupting the utilization accounting.
    with pytest.raises(ConfigError, match="bus_occupancy"):
        SystemConfig(bus_occupancy=0, bus_channels=2)


def test_zero_occupancy_single_channel_stays_legal():
    # The ideal-network ablation: one channel, occupancy 0.
    config = SystemConfig(bus_occupancy=0, bus_channels=1)
    assert config.bus_occupancy == 0


def test_unknown_topology_rejected_with_available_list():
    with pytest.raises(ConfigError, match="registered topologies"):
        SystemConfig(topology="hypercube")


def test_mesh_dims_requires_mesh_topology():
    with pytest.raises(ConfigError, match="topology='mesh'"):
        SystemConfig(mesh_dims=(4, 4))


def test_mesh_dims_must_cover_cores():
    with pytest.raises(ConfigError, match="mesh_dims"):
        SystemConfig(topology="mesh", mesh_dims=(2, 2), num_cores=16)
    with pytest.raises(ConfigError, match="positive"):
        SystemConfig(topology="mesh", mesh_dims=(0, 4))


def test_conflicting_srd_knobs_rejected():
    with pytest.raises(ConfigError, match="num_srds"):
        SystemConfig(num_srds=2, num_routers=4)


def test_num_srds_round_trips_through_dict():
    config = SystemConfig(topology="mesh", mesh_dims=(4, 4), num_srds=2)
    clone = SystemConfig.from_dict(config.to_dict())
    assert clone.mesh_dims == (4, 4)
    assert clone.num_srds == 2
    assert clone == config


# ----------------------------------------------------------------- obs
def test_obs_run_exports_link_tracks_and_gauges():
    from repro.obs.collector import MetricsCollector, finalize_system
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    captured = {}

    def attach(system):
        captured["system"] = system
        system.metrics = registry
        MetricsCollector(system.hooks, registry)

    run_workload(
        "ping-pong", setting_by_name("tuned"), scale=0.1,
        config=SystemConfig(topology="mesh"), on_system=attach,
    )
    finalize_system(captured["system"], registry)
    snapshot = registry.as_dict()
    gauges, counters = set(snapshot["gauges"]), set(snapshot["counters"])
    assert "net.links" in gauges
    assert "net.utilization" in gauges
    assert any(name.startswith("net.traversals.") for name in counters)
    assert any(name.startswith("net.link.") for name in gauges)


def test_obs_bus_run_has_no_net_metrics():
    from repro.obs.collector import MetricsCollector, finalize_system
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    captured = {}

    def attach(system):
        captured["system"] = system
        system.metrics = registry
        MetricsCollector(system.hooks, registry)

    run_workload("ping-pong", setting_by_name("tuned"), scale=0.1,
                 on_system=attach)
    finalize_system(captured["system"], registry)
    snapshot = registry.as_dict()
    names = list(snapshot["gauges"]) + list(snapshot["counters"])
    assert not any(name.startswith("net.") for name in names)


def test_perfetto_trace_gets_interconnect_process():
    import json

    from repro.obs.perfetto import PerfettoTraceSink

    sink = {}

    def attach(system):
        sink["trace"] = PerfettoTraceSink(system.hooks)

    run_workload(
        "ping-pong", setting_by_name("tuned"), scale=0.1,
        config=SystemConfig(topology="mesh"), on_system=attach,
    )
    events = json.loads(sink["trace"].to_json())["traceEvents"]
    names = {
        e["args"]["name"] for e in events
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    assert "interconnect" in names
    assert any(e.get("cat") == "net" for e in events)
