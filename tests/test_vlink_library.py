"""Tests for the user-space queue library (push/pop paths)."""

import pytest

from repro.config import SystemConfig
from repro.errors import RegistrationError, WorkloadError
from repro.mem.bus import PacketKind
from repro.system import System
from tests.conftest import build_pingpong


def test_create_queue_allocates_distinct_sqis(vl_system):
    lib = vl_system.library
    sqis = [lib.create_queue() for _ in range(5)]
    assert len(set(sqis)) == 5
    assert 0 not in sqis  # SQI 0 reserved: zero consHead means "no request"


def test_legacy_consumer_defaults_to_one_line(vl_system):
    cons = vl_system.library.open_consumer(vl_system.library.create_queue(), 1)
    assert len(cons.lines) == 1
    assert not cons.spec_enabled


def test_spec_consumer_defaults_to_config_lines(spamer_system):
    cons = spamer_system.library.open_consumer(
        spamer_system.library.create_queue(), 1
    )
    assert len(cons.lines) == spamer_system.config.lines_per_endpoint
    assert cons.spec_enabled


def test_spec_endpoint_rejected_on_vl_build(vl_system):
    q = vl_system.library.create_queue()
    with pytest.raises(RegistrationError):
        vl_system.library.open_consumer(q, 1, speculative=True)


def test_legacy_endpoint_available_on_spamer_build(spamer_system):
    q = spamer_system.library.create_queue()
    cons = spamer_system.library.open_consumer(q, 1, speculative=False)
    assert not cons.spec_enabled
    assert len(spamer_system.device.specbuf) == 0


def test_bad_core_rejected(vl_system):
    q = vl_system.library.create_queue()
    with pytest.raises(WorkloadError):
        vl_system.library.open_producer(q, core_id=99)


def test_pingpong_delivers_in_order_on_vl(vl_system):
    received = build_pingpong(vl_system, rounds=40)
    vl_system.run_to_completion(limit=10_000_000)
    assert received == list(range(40))


def test_pingpong_delivers_all_on_spamer(spamer_system):
    received = build_pingpong(spamer_system, rounds=40)
    spamer_system.run_to_completion(limit=10_000_000)
    assert sorted(received) == list(range(40))


def test_vl_sends_one_request_per_message_when_uncongested(vl_system):
    build_pingpong(vl_system, rounds=30, compute=500)
    vl_system.run_to_completion(limit=10_000_000)
    requests = vl_system.network.packets(PacketKind.REQUEST)
    # One unconditional fetch per pop; slow waits may add a rare refetch.
    assert 30 <= requests <= 40


def test_spec_endpoints_send_no_requests(spamer_system):
    build_pingpong(spamer_system, rounds=30)
    spamer_system.run_to_completion(limit=10_000_000)
    assert spamer_system.network.packets(PacketKind.REQUEST) == 0


def test_push_blocks_on_prodbuf_backpressure():
    """A producer outrunning a stalled consumer is throttled, not dropped."""
    config = SystemConfig(num_cores=4, prodbuf_entries=4)
    system = System(config=config, device="vl")
    lib = system.library
    q = lib.create_queue()
    prod = lib.open_producer(q, 0)
    cons = lib.open_consumer(q, 1)
    received = []

    def producer(ctx):
        for i in range(20):
            yield from ctx.push(prod, i)

    def consumer(ctx):
        yield from ctx.compute(50_000)  # long stall: device must backpressure
        for _ in range(20):
            msg = yield from ctx.pop(cons)
            received.append(msg.payload)

    system.spawn(0, producer, "p")
    system.spawn(1, consumer, "c")
    system.run_to_completion(limit=50_000_000)
    assert received == list(range(20))


def test_pop_until_returns_none_when_stopped(vl_system):
    lib = vl_system.library
    q = lib.create_queue()
    lib.open_producer(q, 0)
    cons = lib.open_consumer(q, 1)
    results = []

    def consumer(ctx):
        msg = yield from ctx.pop_until(cons, lambda: ctx.now > 500)
        results.append(msg)

    vl_system.spawn(1, consumer, "c")
    vl_system.run_to_completion(limit=1_000_000)
    assert results == [None]


def test_outlined_library_charges_call_overhead():
    """Section 3.4: without inlining every op pays call_overhead."""
    def run(inline):
        cfg = SystemConfig(num_cores=4, inline_library=inline)
        system = System(config=cfg, device="vl")
        build_pingpong(system, rounds=50, compute=100)
        return system.run_to_completion(limit=10_000_000)

    assert run(inline=False) > run(inline=True)


def test_message_metadata(vl_system):
    lib = vl_system.library
    q = lib.create_queue()
    prod = lib.open_producer(q, 0)
    cons = lib.open_consumer(q, 1)
    seen = []

    def producer(ctx):
        for i in range(3):
            msg = yield from ctx.push(prod, f"payload-{i}")
            assert msg.seq == i

    def consumer(ctx):
        for _ in range(3):
            msg = yield from ctx.pop(cons)
            seen.append((msg.seq, msg.payload, msg.sqi))

    vl_system.spawn(0, producer, "p")
    vl_system.spawn(1, consumer, "c")
    vl_system.run_to_completion(limit=1_000_000)
    assert seen == [(0, "payload-0", q), (1, "payload-1", q), (2, "payload-2", q)]
