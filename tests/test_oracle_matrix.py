"""Cross-device semantic-equivalence smoke matrix.

Every registered zero-configuration setting must deliver a bit-identical
canonical stream (per-producer FIFO projection) on each small workload —
timings differ across devices, semantics must not.  The ``never`` ablation
is excluded: it deadlocks fetch-skipping consumers by construction and is
covered by the watchdog regression in ``test_verify_invariants.py``.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.eval.runner import multipush_setting, setting_names
from repro.verify.oracle import (
    FunctionalQueueModel,
    StreamRecorder,
    run_differential,
    software_reference_stream,
)

SMALL = SystemConfig(num_cores=16)
# Workloads here must push a *device-invariant* per-producer stream:
# ping-pong and incast have fixed producer programs, and firewall routes
# packets to its two filters deterministically (alternating dispatch).
# The pipeline workload is excluded on purpose — its middle stages shard
# packets across worker threads dynamically, so which worker (producer)
# forwards a given packet is timing-dependent and per-producer streams
# legitimately differ across devices.
WORKLOADS = [("ping-pong", 0.02), ("incast", 0.02), ("firewall", 0.02)]


def matrix_settings():
    """Every zero-config flavor, plus an explicitly burst-mode multipush.

    The registered ``multipush`` setting inherits the config default
    ``burst_k=1``, so without the extra participant the matrix would
    never cross-check actual burst/rollback interleavings against the
    other devices' canonical streams.
    """
    registered = [s for s in setting_names() if s.algorithm != "never"]
    return registered + [multipush_setting(4, 0.0)]


@pytest.mark.parametrize("workload,scale", WORKLOADS,
                         ids=[w for w, _ in WORKLOADS])
def test_all_devices_agree_on_semantics(workload, scale):
    report = run_differential(
        workload, scale=scale, settings=matrix_settings(), config=SMALL
    )
    assert report.ok, "\n".join(report.mismatches)
    # Every flavor actually delivered something comparable.
    totals = {label: s.total_delivered() for label, s in report.streams.items()}
    assert len(set(totals.values())) == 1, totals
    assert next(iter(totals.values())) > 0


def test_matrix_covers_every_registered_device():
    devices = {s.device for s in matrix_settings()}
    from repro.registry import device_names

    assert devices == set(device_names())
    assert any("multipush:k4" in s.label for s in matrix_settings())


def test_multipush_k1_metrics_bit_identical_to_tuned():
    """With the default ``burst_k=1`` the burst device must degenerate to
    single-push SPAMeR exactly: every RunMetrics field (cycles, push and
    bus counters, occupancy averages, extras) equal bit for bit, not just
    the delivered stream."""
    import dataclasses

    from repro.eval.runner import run_workload, setting_by_name

    for workload, scale in WORKLOADS:
        reference = run_workload(
            workload, setting_by_name("tuned"), scale=scale, config=SMALL
        )
        candidate = run_workload(
            workload, multipush_setting(1, 0.75), scale=scale, config=SMALL
        )
        assert dataclasses.replace(candidate, setting=reference.setting) \
            == reference, (workload, candidate, reference)


def test_functional_model_predicts_push_order():
    recorder = StreamRecorder()
    recorder.pushes = {(1, 0): [0, 1, 2, 3]}
    predicted = FunctionalQueueModel().predict(recorder)
    assert predicted.links == {(1, 0): (0, 1, 2, 3)}


def test_canonical_stream_diff_reports_divergence():
    recorder = StreamRecorder()
    recorder.pushes = {(1, 0): [0, 1, 2]}
    model = FunctionalQueueModel().predict(recorder)
    other = StreamRecorder()
    other.pushes = {(1, 0): [0, 1, 2]}
    other.deliveries = {(1, 0): [0, 2, 1]}
    mismatches = model.diff(other.canonical(), "model", "mutant")
    assert len(mismatches) == 1
    assert "sqi=1" in mismatches[0]


def test_software_queue_reference_is_fifo():
    assert software_reference_stream(20) == tuple(range(20))


def test_oracle_flags_seeded_out_of_order_delivery():
    """End to end: a reordering bug in one flavor must fail the diff."""
    from repro.eval.runner import standard_settings

    report = run_differential("ping-pong", scale=0.02,
                              settings=standard_settings()[:2], config=SMALL)
    assert report.ok
    # Corrupt one stream after the fact: swap two delivered seqs.
    label = standard_settings()[1].label
    stream = report.streams[label]
    key = next(iter(stream.links))
    seqs = list(stream.links[key])
    seqs[0], seqs[1] = seqs[1], seqs[0]
    stream.links[key] = tuple(seqs)
    base = report.streams[standard_settings()[0].label]
    assert base.diff(stream, "baseline", label)
