"""Differential scheduler-equivalence harness.

The kernel's pending-event queue is pluggable (:mod:`repro.sim.sched`);
the contract is that every strategy dispatches in the exact
``(time, priority, seq)`` total order the reference binary heap realizes,
so simulated results are bit-identical.  This suite enforces it at three
levels:

1. **Op-sequence traces** — Hypothesis-generated programs of schedule/
   callback/process/late-subscribe operations interpreted against each
   scheduler, asserting identical ``(dispatch order, now,
   events_processed, events_scheduled)`` traces, under ``run()``,
   windowed ``run(until)``, pure ``step()`` driving, and
   ``run_until_complete``.
2. **Whole-system equivalence** — the PR 2 oracle matrix and the golden
   Figure-8 metrics re-run under each non-default scheduler must match
   the heap bit for bit.
3. **Mutation kills** — deliberately broken scheduler subclasses (LIFO
   within a lane, priority-blind lanes) must make the trace harness
   diverge, proving it has teeth (mirrors
   ``test_sticky_slot_regression.py``).
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.errors import ConfigError, SchedulingError
from repro.eval.runner import multipush_setting, run_workload, standard_settings
from repro.sim.kernel import Environment, NORMAL, URGENT
from repro.sim.sched import (
    CalendarScheduler,
    HeapScheduler,
    register_scheduler,
    resolve_scheduler,
    scheduler_descriptions,
    scheduler_names,
    unregister_scheduler,
)

SCHEDULERS = scheduler_names()
ALT_SCHEDULERS = [name for name in SCHEDULERS if name != "heap"]


# --------------------------------------------------------- the op interpreter
def execute(program, scheduler, driver="run", until=None):
    """Interpret an op program against one scheduler; return its full trace.

    Ops (recursive — children run inside the parent's callback, i.e. from
    the dispatch loop itself, which is where batch preemption and window
    advances can go wrong):

    - ``("timeout", delay, children)``     NORMAL event via Timeout
    - ``("urgent", delay, children)``      pre-triggered event at URGENT
    - ``("far", delay)``                   far-future timeout (calendar
                                           spill-heap path)
    - ``("late_sub",)``                    subscribe to the most recently
                                           processed event → URGENT
                                           schedule_callback at *now*, the
                                           mid-batch preemption case
    - ``("call_later", delay, priority)``  event-free deferred call
    - ``("process", delays)``              generator process yielding
                                           timeouts
    """
    env = Environment(scheduler=scheduler)
    trace = []
    ids = itertools.count()
    done = []

    def fire(tag, ident, children):
        def callback(event):
            trace.append((tag, env.now, ident))
            done.append(event)
            run_ops(children)

        return callback

    def run_ops(ops):
        for op in ops:
            kind = op[0]
            ident = next(ids)
            if kind == "timeout":
                env.timeout(op[1]).subscribe(fire("t", ident, op[2]))
            elif kind == "urgent":
                event = env.event()
                event._ok, event._value = True, None
                event.subscribe(fire("u", ident, op[2]))
                env.schedule(event, delay=op[1], priority=URGENT)
            elif kind == "far":
                env.timeout(op[1]).subscribe(fire("f", ident, ()))
            elif kind == "late_sub":
                if done:
                    done[-1].subscribe(
                        lambda e, i=ident: trace.append(("l", env.now, i))
                    )
                else:
                    trace.append(("skip", env.now, ident))
            elif kind == "call_later":
                env.call_later(
                    op[1],
                    lambda arg, i=ident: trace.append(("c", env.now, i)),
                    priority=op[2],
                )
            elif kind == "process":

                def gen(delays=tuple(op[1]), i=ident):
                    for d in delays:
                        yield env.timeout(d)
                        trace.append(("p", env.now, i))

                env.process(gen())
            else:  # pragma: no cover - grammar guard
                raise AssertionError(f"unknown op {op!r}")

    run_ops(program)
    if driver == "run":
        env.run()
    elif driver == "windowed":
        env.run(until=until)
        trace.append(("window", env.now, -1))
        env.run()
    elif driver == "step":
        while env.queue_length:
            env.step()
    else:  # pragma: no cover - grammar guard
        raise AssertionError(f"unknown driver {driver!r}")
    return trace, env.now, env.events_processed, env.events_scheduled


def _op_strategy():
    leaf = st.one_of(
        st.tuples(st.just("far"), st.integers(1500, 9000)),
        st.just(("late_sub",)),
        st.tuples(st.just("call_later"), st.integers(0, 50),
                  st.sampled_from([URGENT, NORMAL])),
        st.tuples(st.just("process"),
                  st.lists(st.integers(0, 20), min_size=1, max_size=4)),
    )
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.tuples(st.just("timeout"), st.integers(0, 50),
                      st.lists(children, max_size=4)),
            st.tuples(st.just("urgent"), st.integers(0, 50),
                      st.lists(children, max_size=4)),
        ),
        max_leaves=12,
    )


PROGRAMS = st.lists(_op_strategy(), min_size=1, max_size=10)


# ----------------------------------------------------------- trace properties
@given(program=PROGRAMS)
@settings(max_examples=80, deadline=None)
def test_schedulers_produce_identical_traces(program):
    reference = execute(program, "heap")
    for name in ALT_SCHEDULERS:
        assert execute(program, name) == reference, name


@given(program=PROGRAMS, until=st.integers(0, 120))
@settings(max_examples=40, deadline=None)
def test_windowed_runs_equivalent(program, until):
    """run(until) then run() — window boundary handling must agree."""
    reference = execute(program, "heap", driver="windowed", until=until)
    for name in ALT_SCHEDULERS:
        assert execute(program, name, driver="windowed", until=until) == \
            reference, name


@given(program=PROGRAMS)
@settings(max_examples=40, deadline=None)
def test_step_driven_runs_equivalent(program):
    """Driving purely via step() exercises the single-pop path."""
    reference = execute(program, "heap", driver="step")
    for name in ALT_SCHEDULERS:
        assert execute(program, name, driver="step") == reference, name


@given(delays=st.lists(st.integers(0, 30), min_size=1, max_size=5),
       program=PROGRAMS)
@settings(max_examples=40, deadline=None)
def test_run_until_complete_equivalent(delays, program):
    """The target completing mid-batch must leave identical state."""

    def run_one(name):
        env = Environment(scheduler=name)
        trace = []

        def target():
            for d in delays:
                yield env.timeout(d)
                trace.append(("target", env.now))

        proc = env.process(target())
        # Background noise from the shared op grammar, same program for
        # every scheduler (interpreted standalone to seed the queue).
        for op in program:
            if op[0] == "timeout":
                env.timeout(op[1]).subscribe(
                    lambda e, t=op[1]: trace.append(("bg", env.now))
                )
        env.run_until_complete(proc)
        return trace, env.now, env.events_processed, env.queue_length

    reference = run_one("heap")
    for name in ALT_SCHEDULERS:
        assert run_one(name) == reference, name


# -------------------------------------------------------- watchdog equivalence
@pytest.mark.parametrize("name", SCHEDULERS)
def test_watchdog_firing_point_identical(name):
    """The watchdog fires inside the first dispatch at/past the deadline —
    the same cycle regardless of queue strategy or batch shape."""
    env = Environment(scheduler=name)
    fires = []

    def watchdog(now):
        fires.append(now)
        env.defer_watchdog(now + 25)

    for delay in (10, 20, 20, 30, 60):
        env.timeout(delay)
    env.set_watchdog(watchdog, deadline=15)
    env.run()
    assert fires == [20, 60]


# --------------------------------------------------- whole-system equivalence
FIG8_QUICK = [("ping-pong", 0.05), ("incast", 0.05)]


def fig8_quick_settings():
    """The golden Figure-8 flavors plus burst-mode multipush: rollback
    scheduling (doomed claims, invalidation transits) must be just as
    scheduler-invariant as the single-push pipeline."""
    return standard_settings() + [multipush_setting(4, 0.0)]


@pytest.mark.parametrize("name", ALT_SCHEDULERS)
def test_fig8_metrics_identical_across_schedulers(name):
    """Golden Figure-8 cells: every metric field must match the heap."""
    for workload, scale in FIG8_QUICK:
        for setting in fig8_quick_settings():
            reference = run_workload(
                workload, setting, scale=scale, seed=7,
                config=SystemConfig(num_cores=16),
            )
            candidate = run_workload(
                workload, setting, scale=scale, seed=7,
                config=SystemConfig(num_cores=16, scheduler=name),
            )
            assert candidate == reference, (workload, setting.label, name)


@pytest.mark.parametrize("name", ALT_SCHEDULERS)
def test_oracle_matrix_agrees_across_schedulers(name):
    """The PR 2 differential oracle under each scheduler: every device
    flavor still delivers the bit-identical canonical stream."""
    from repro.verify.oracle import run_differential
    from tests.test_oracle_matrix import matrix_settings

    report = run_differential(
        "ping-pong", scale=0.02, settings=matrix_settings(),
        config=SystemConfig(num_cores=16, scheduler=name),
    )
    assert report.ok, "\n".join(report.mismatches)


# -------------------------------------------------------------- mutation kill
class _LifoLaneScheduler(CalendarScheduler):
    """Mutant: breaks the seq tiebreak — LIFO within a (time, prio) lane."""

    def pop_batch(self):
        batch = super().pop_batch()
        if batch is not None and len(batch) > 1:
            batch.reverse()
        return batch


class _PriorityBlindScheduler(CalendarScheduler):
    """Mutant: drops URGENT-before-NORMAL — everything lands NORMAL."""

    def push(self, entry):
        if entry[1] == URGENT:
            entry = (entry[0], NORMAL, entry[2]) + entry[3:]
        super().push(entry)


def test_harness_kills_broken_seq_tiebreak():
    program = [("timeout", 5, ()), ("timeout", 5, ()), ("timeout", 5, ())]
    assert execute(program, _LifoLaneScheduler) != execute(program, "heap")


def test_harness_kills_broken_urgent_priority():
    program = [("timeout", 5, ()), ("urgent", 5, ())]
    assert execute(program, _PriorityBlindScheduler) != execute(program, "heap")


def test_mutants_are_otherwise_plausible():
    """The mutants pass a trivially-ordered program — the kills above are
    detecting the specific broken guarantee, not generic breakage."""
    program = [("timeout", 3, ()), ("timeout", 9, ())]
    reference = execute(program, "heap")
    assert execute(program, _LifoLaneScheduler) == reference
    assert execute(program, _PriorityBlindScheduler) == reference


# ----------------------------------------------------------- registry plumbing
def test_registry_resolves_and_reports_names():
    assert set(SCHEDULERS) >= {"heap", "ladder", "calendar", "batch"}
    assert resolve_scheduler("heap") is HeapScheduler
    with pytest.raises(ConfigError, match="unknown scheduler"):
        resolve_scheduler("nope")
    descriptions = scheduler_descriptions()
    assert all(descriptions[name] for name in SCHEDULERS)


def test_register_and_unregister_roundtrip():
    @register_scheduler("test-local", description="test only")
    class _Local(HeapScheduler):
        pass

    try:
        assert resolve_scheduler("test-local") is _Local
        with pytest.raises(ConfigError, match="already registered"):
            register_scheduler("test-local")(_Local)
    finally:
        unregister_scheduler("test-local")
    assert "test-local" not in scheduler_names()


def test_config_validates_scheduler_name():
    assert SystemConfig(scheduler="calendar").scheduler == "calendar"
    with pytest.raises(ConfigError, match="unknown scheduler"):
        SystemConfig(scheduler="nope")


def test_environment_accepts_factory_and_reports_name():
    assert Environment().scheduler_name == "ladder"
    assert Environment(scheduler="calendar").scheduler_name == "calendar"
    assert Environment(scheduler=CalendarScheduler).scheduler_name == "calendar"


def test_inline_fast_paths_exposed():
    """The default (ladder) must expose its raw spine and the heap opt-in
    its raw list — both inline dispatch loops depend on these attributes,
    and golden fixtures depend on the loops staying live."""
    env = Environment()
    assert env._spine is not None and env._heap is None
    env.timeout(5)
    assert env._spine[0][0] == 5

    env = Environment(scheduler="heap")
    assert env._heap is not None and env._spine is None
    env.timeout(5)
    assert env._heap[0][0] == 5


def test_bucket_schedulers_reject_custom_priorities():
    for name in ("calendar", "batch"):
        env = Environment(scheduler=name)
        event = env.event()
        event._ok, event._value = True, None
        with pytest.raises(SchedulingError, match="priority lanes"):
            env.schedule(event, delay=1, priority=2)
    # The heap and the ladder accept arbitrary integer priorities (both
    # realize the order through full-tuple comparisons).
    for name in ("heap", "ladder"):
        env = Environment(scheduler=name)
        event = env.event()
        event._ok, event._value = True, None
        env.schedule(event, delay=1, priority=7)
        env.run()
        assert event.processed


def test_calendar_slots_must_be_power_of_two():
    with pytest.raises(ConfigError, match="power of two"):
        CalendarScheduler(slots=1000)


@pytest.mark.parametrize("name", ALT_SCHEDULERS)
def test_deep_far_future_spill(name):
    """Thousands of entries far beyond the calendar window (spill-heap
    migration path) still dispatch in exact order."""
    def run_one(sched):
        env = Environment(scheduler=sched)
        out = []
        for i in range(300):
            delay = (i * 7919) % 50_000  # far beyond the 2048-cycle window
            env.timeout(delay).subscribe(
                lambda e, i=i: out.append((env.now, i))
            )
        env.run()
        return out, env.now, env.events_processed

    assert run_one(name) == run_one("heap")
