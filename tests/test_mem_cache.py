"""Unit tests for the set-associative cache and MOESI states."""

import pytest

from repro.config import CacheConfig
from repro.errors import ProtocolError
from repro.mem.cache import MoesiState, SetAssocCache


@pytest.fixture
def cache():
    # 4 sets x 2 ways x 64B lines = 512B.
    return SetAssocCache(CacheConfig(512, 2), name="test")


def test_moesi_state_predicates():
    assert MoesiState.MODIFIED.can_supply
    assert MoesiState.OWNED.can_supply
    assert MoesiState.EXCLUSIVE.can_supply
    assert not MoesiState.SHARED.can_supply
    assert MoesiState.MODIFIED.is_writable and MoesiState.EXCLUSIVE.is_writable
    assert not MoesiState.OWNED.is_writable
    assert MoesiState.MODIFIED.dirty and MoesiState.OWNED.dirty
    assert not MoesiState.EXCLUSIVE.dirty
    assert not MoesiState.INVALID.is_valid


def test_line_address_decomposition(cache):
    assert cache.line_addr(0x1234) == 0x1200
    assert cache.set_index(0x0000) != cache.set_index(0x0040)
    # Same set every num_sets lines:
    assert cache.set_index(0x0000) == cache.set_index(0x0000 + 4 * 64)


def test_miss_then_hit(cache):
    assert cache.lookup(0x100) is None
    cache.install(0x100, MoesiState.EXCLUSIVE)
    entry = cache.lookup(0x100)
    assert entry is not None and entry.state is MoesiState.EXCLUSIVE
    assert cache.hits == 1 and cache.misses == 1


def test_lru_eviction(cache):
    # Fill one set (2 ways): addresses 0x0, 0x100 map to set 0 (stride 256).
    cache.install(0x000, MoesiState.SHARED)
    cache.install(0x100, MoesiState.SHARED)
    cache.lookup(0x000)  # touch -> 0x100 becomes LRU
    victim = cache.install(0x200, MoesiState.SHARED)
    assert victim is not None and victim.line_addr == 0x100
    assert cache.peek(0x000) is not None
    assert cache.peek(0x100) is None


def test_reinstall_same_line_does_not_evict(cache):
    cache.install(0x000, MoesiState.SHARED)
    cache.install(0x100, MoesiState.SHARED)
    victim = cache.install(0x000, MoesiState.MODIFIED)
    assert victim is None
    assert cache.state_of(0x000) is MoesiState.MODIFIED


def test_set_state_and_invalidate(cache):
    cache.install(0x40, MoesiState.EXCLUSIVE)
    cache.set_state(0x40, MoesiState.SHARED)
    assert cache.state_of(0x40) is MoesiState.SHARED
    cache.set_state(0x40, MoesiState.INVALID)
    assert cache.state_of(0x40) is MoesiState.INVALID
    assert not cache.invalidate(0x40)  # already gone


def test_set_state_on_absent_line_raises(cache):
    with pytest.raises(ProtocolError):
        cache.set_state(0x9999, MoesiState.SHARED)


def test_install_invalid_state_rejected(cache):
    with pytest.raises(ProtocolError):
        cache.install(0x40, MoesiState.INVALID)


def test_peek_does_not_count_stats(cache):
    cache.peek(0x40)
    assert cache.misses == 0
    cache.install(0x40, MoesiState.SHARED)
    cache.peek(0x40)
    assert cache.hits == 0


def test_resident_lines_counter(cache):
    for i in range(4):
        cache.install(i * 64, MoesiState.SHARED)
    assert cache.resident_lines == 4
