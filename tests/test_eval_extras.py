"""Tests for latency metrics, config serialization, trace export,
multi-channel networks and multi-seed replication."""

import json

import pytest

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.errors import ConfigError
from repro.eval.replication import ReplicatedStat, _stat, replicated_comparison
from repro.eval.runner import run_workload, standard_settings
from repro.sim.trace import EventKind, TraceRecorder


SCALE = 0.06


# ------------------------------------------------------------- latency metrics
def test_latency_metrics_collected():
    vl = standard_settings()[0]
    m = run_workload("incast", vl, scale=SCALE)
    assert m.latency_mean > 0
    assert m.latency_p50 <= m.latency_p99
    # Latency includes at least one network traversal.
    assert m.latency_mean > DEFAULT_CONFIG.bus_latency


def test_spamer_reduces_mean_latency_on_backlogged_consumer():
    vl, zero = standard_settings()[:2]
    base = run_workload("firewall", vl, scale=SCALE)
    spec = run_workload("firewall", zero, scale=SCALE)
    assert spec.latency_mean < base.latency_mean


# --------------------------------------------------------- config serialization
def test_config_roundtrips_through_dict_and_json():
    cfg = SystemConfig(num_cores=8, bus_latency=50, bus_channels=2)
    assert SystemConfig.from_dict(cfg.to_dict()) == cfg
    assert SystemConfig.from_json(cfg.to_json()) == cfg


def test_config_json_is_valid_json():
    data = json.loads(DEFAULT_CONFIG.to_json())
    assert data["num_cores"] == 16
    assert data["l1d"]["size_bytes"] == 32 * 1024


# -------------------------------------------------------------- trace export
def test_trace_csv_export(env):
    trace = TraceRecorder(env)
    txn = trace.new_transaction()
    trace.record_at(EventKind.DATA_ARRIVE, 10, txn, 1)
    trace.record_at(EventKind.LINE_VACATE, 5, txn, 1)
    trace.record_at(EventKind.LINE_FILL, 40, txn, 1)
    trace.record_at(EventKind.FIRST_USE, 50, txn, 1)
    csv = trace.to_csv()
    lines = csv.splitlines()
    assert lines[0].startswith("transaction_id,")
    assert lines[1].split(",")[:3] == ["0", "1", "10"]
    assert lines[1].split(",")[7] == "1"  # speculative (no request)


def test_trace_events_json(env):
    trace = TraceRecorder(env)
    trace.record_at(EventKind.REQUEST_ARRIVE, 7, 0, 2, detail="x")
    events = json.loads(trace.to_events_json())
    assert events == [
        {"time": 7, "kind": "request arrive", "transaction_id": 0,
         "sqi": 2, "detail": "x"}
    ]


# ------------------------------------------------------------ network channels
def test_multichannel_network_parallelism(env):
    from repro.mem.bus import CoherenceNetwork, PacketKind

    cfg = SystemConfig(bus_channels=2, bus_occupancy=10, bus_latency=0)
    net = CoherenceNetwork(env, cfg)
    done = []
    for _ in range(4):
        net.transit(PacketKind.STASH).subscribe(lambda e: done.append(env.now))
    env.run()
    # Two channels serve two packets at a time.
    assert done == [10, 10, 20, 20]
    assert net.busy_cycles == 40
    assert net.utilization(20) == pytest.approx(1.0)


def test_multichannel_speeds_up_congested_workload():
    zero = standard_settings()[1]
    slow = run_workload("FIR", zero, scale=SCALE,
                        config=SystemConfig(bus_occupancy=12))
    fast = run_workload("FIR", zero, scale=SCALE,
                        config=SystemConfig(bus_occupancy=12, bus_channels=4))
    assert fast.exec_cycles < slow.exec_cycles


# ---------------------------------------------------------------- replication
def test_stat_math():
    s = _stat([1.0, 2.0, 3.0])
    assert s.mean == 2.0
    assert s.stddev == pytest.approx(1.0)
    assert s.ci95_half_width == pytest.approx(4.303 / (3 ** 0.5), rel=1e-3)
    assert s.low < s.mean < s.high
    single = _stat([5.0])
    assert single.ci95_half_width == 0.0


def test_replicated_comparison_aggregates():
    result = replicated_comparison(
        seeds=[1, 2, 3], workloads=["ping-pong", "incast"], scale=SCALE
    )
    vl = result.settings[0]
    assert result.speedups["ping-pong"][vl].mean == 1.0
    assert result.speedups["ping-pong"][vl].stddev == 0.0
    incast_zero = result.speedups["incast"][result.settings[1]]
    assert incast_zero.samples == 3
    assert incast_zero.mean > 1.0
    geo = result.geomeans[result.settings[1]]
    assert geo.low <= geo.mean <= geo.high


def test_replication_needs_seeds():
    with pytest.raises(ConfigError):
        replicated_comparison(seeds=[])


def test_speedup_shapes_stable_across_seeds():
    """The qualitative claims are not one-seed accidents."""
    result = replicated_comparison(
        seeds=[10, 20, 30], workloads=["incast", "firewall"], scale=SCALE
    )
    zero = result.settings[1]
    for w in ("incast", "firewall"):
        stat = result.speedups[w][zero]
        assert stat.low > 1.0, (w, str(stat))  # wins even at the CI floor
        assert stat.ci95_half_width < 0.5 * stat.mean