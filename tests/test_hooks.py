"""The instrumentation hook bus: ordering, isolation, zero-cost guards."""

from repro.sim.hooks import (
    BusHook,
    HookBus,
    HookEvent,
    SpecBufHook,
    TraceHook,
    TransactionHook,
)
from repro.sim.trace import EventKind


def test_subscribers_fire_in_subscription_order():
    bus = HookBus()
    order = []
    bus.subscribe(BusHook, lambda e: order.append("first"))
    bus.subscribe(BusHook, lambda e: order.append("second"))
    bus.subscribe(BusHook, lambda e: order.append("third"))
    bus.publish(BusHook(tick=0, kind="stash", busy_cycles=3))
    assert order == ["first", "second", "third"]


def test_base_class_subscription_catches_all_event_types():
    bus = HookBus()
    seen = []
    bus.subscribe(HookEvent, seen.append)
    events = [
        BusHook(tick=1, kind="request", busy_cycles=0),
        SpecBufHook(tick=2, sqi=1, entry_index=0, hit=True),
        TraceHook(tick=3, kind=EventKind.DATA_ARRIVE, transaction_id=0, sqi=1),
    ]
    for event in events:
        bus.publish(event)
    assert seen == events


def test_exact_type_delivered_before_catch_all():
    bus = HookBus()
    order = []
    bus.subscribe(HookEvent, lambda e: order.append("any"))
    bus.subscribe(BusHook, lambda e: order.append("exact"))
    bus.publish(BusHook(tick=0, kind="stash", busy_cycles=0))
    # MRO walk: the concrete type's subscribers fire before HookEvent's.
    assert order == ["exact", "any"]


def test_unsubscribe_stops_delivery():
    bus = HookBus()
    seen = []
    sub = bus.subscribe(BusHook, seen.append)
    bus.publish(BusHook(tick=0, kind="stash", busy_cycles=0))
    assert bus.unsubscribe(sub) is True
    bus.publish(BusHook(tick=1, kind="stash", busy_cycles=0))
    assert len(seen) == 1
    # A second unsubscribe reports the subscription already gone.
    assert bus.unsubscribe(sub) is False


def test_exception_in_one_subscriber_does_not_drop_events_for_others():
    bus = HookBus()
    seen = []

    def broken(event):
        raise RuntimeError("boom")

    bus.subscribe(BusHook, broken)
    bus.subscribe(BusHook, seen.append)
    event = BusHook(tick=0, kind="stash", busy_cycles=0)
    bus.publish(event)
    assert seen == [event]
    assert len(bus.errors) == 1
    sub, exc = bus.errors[0]
    assert isinstance(exc, RuntimeError)


def test_wants_guards_silent_buses():
    bus = HookBus()
    assert not bus.wants(BusHook)
    assert not bus
    bus.subscribe(TraceHook, lambda e: None)
    assert bus.wants(TraceHook)
    assert not bus.wants(BusHook)
    assert bus.subscriber_count == 1
    # Subscribing to the base class makes every event type wanted.
    bus.subscribe(HookEvent, lambda e: None)
    assert bus.wants(BusHook) and bus.wants(TransactionHook)


def test_trace_recorder_attaches_as_subscriber():
    from repro.sim.kernel import Environment
    from repro.sim.trace import TraceRecorder

    env = Environment()
    bus = HookBus()
    recorder = TraceRecorder(env, enabled=True)
    recorder.attach(bus)
    recorder.attach(bus)  # idempotent: devices share one bus + recorder
    assert bus.subscriber_count == 1
    bus.publish(
        TraceHook(tick=5, kind=EventKind.LINE_FILL, transaction_id=2, sqi=1,
                  detail="speculative")
    )
    assert len(recorder.events) == 1
    event = recorder.events[0]
    assert (event.time, event.kind, event.transaction_id, event.sqi) == (
        5, EventKind.LINE_FILL, 2, 1)


def test_disabled_trace_recorder_does_not_subscribe():
    from repro.sim.kernel import Environment
    from repro.sim.trace import TraceRecorder

    bus = HookBus()
    TraceRecorder(Environment(), enabled=False).attach(bus)
    assert bus.subscriber_count == 0
    assert not bus.wants(TraceHook)
