"""Structural tests for workload internals: grids, wavefronts, credits."""

import pytest

from repro.system import System
from repro.workloads import Halo, Sweep, make_workload
from repro.workloads.ember import Incast


# ------------------------------------------------------------------- halo grid
def test_halo_neighbor_relation_is_symmetric():
    halo = Halo()
    for r in range(halo.ROWS):
        for c in range(halo.COLS):
            for nr, nc in halo._neighbors(r, c):
                assert (r, c) in halo._neighbors(nr, nc)


def test_halo_neighbor_counts():
    halo = Halo()
    counts = sorted(
        len(halo._neighbors(r, c))
        for r in range(halo.ROWS)
        for c in range(halo.COLS)
    )
    # 4x4 grid: 4 corners with 2, 8 edges with 3, 4 interior with 4.
    assert counts == [2] * 4 + [3] * 8 + [4] * 4


def test_halo_edge_count_matches_table2():
    halo = Halo()
    total_directed_edges = sum(
        len(halo._neighbors(r, c))
        for r in range(halo.ROWS)
        for c in range(halo.COLS)
    )
    assert total_directed_edges == 48
    assert halo.topology()[0].count == 48


def test_halo_builds_one_queue_per_directed_edge(small_config):
    system = System(config=small_config.with_overrides(num_cores=16), device="vl")
    halo = make_workload("halo", scale=0.05)
    halo.build(system)
    assert len(system.library.producers) == 48
    assert len(system.library.consumers) == 48


# -------------------------------------------------------------------- sweep
def test_sweep_has_48_directed_edges():
    sweep = Sweep()
    assert sweep.topology()[0].count == 48


def test_sweep_wavefront_completes_in_dependency_order():
    """The forward wavefront reaches (3,3) only after every upstream cell."""
    system = System(device="vl")
    sweep = make_workload("sweep", scale=0.04)
    sweep.build(system)
    system.run_to_completion(limit=100_000_000)
    sweep.validate()


# -------------------------------------------------------------------- incast
def test_incast_master_on_core_zero(small_config):
    system = System(config=small_config.with_overrides(num_cores=16), device="vl")
    incast = make_workload("incast", scale=0.05)
    incast.build(system)
    master = system.library.consumers[0]
    assert master.core_id == 0
    producers = {p.core_id for p in system.library.producers}
    assert producers == {1, 2, 3, 4}


def test_incast_total_messages():
    system = System(device="vl")
    incast = make_workload("incast", scale=0.1)
    incast.build(system)
    system.run_to_completion(limit=100_000_000)
    expected = Incast.PRODUCERS * incast.scaled(Incast.MESSAGES_PER_PRODUCER)
    assert incast.total_messages() == expected


# ------------------------------------------------------------------ pipeline
def test_pipeline_credit_window_bounds_inflight():
    """The generator never has more than CREDIT_WINDOW packets uncredited,
    so routing-device occupancy stays far below the entry count."""
    system = System(device="vl")
    pipeline = make_workload("pipeline", scale=0.08)
    pipeline.build(system)

    max_seen = [0]

    def monitor(ctx):
        while any(t.is_alive for t in system.threads[:-1]):
            occupancy = sum(d.entries_in_use for d in system.devices)
            max_seen[0] = max(max_seen[0], occupancy)
            yield from ctx.compute(200)

    system.spawn(system.config.num_cores - 1, monitor, "monitor")
    system.run_to_completion(limit=200_000_000)
    pipeline.validate()
    assert max_seen[0] <= system.config.prodbuf_entries


# ------------------------------------------------------------------- firewall
def test_firewall_splits_packets_evenly():
    system = System(device="vl")
    firewall = make_workload("firewall", scale=0.1)
    firewall.build(system)
    system.run_to_completion(limit=200_000_000)
    firewall.validate()
    filter_a = sum(1 for k in firewall.consumed if k[0] == "fa")
    filter_b = sum(1 for k in firewall.consumed if k[0] == "fb")
    assert abs(filter_a - filter_b) <= 1


# ---------------------------------------------------------------------- FIR
def test_fir_burst_structure():
    """The source's inter-burst gaps are visible in production timestamps."""
    system = System(device="spamer", algorithm="0delay")
    fir = make_workload("FIR", scale=0.1)
    fir.build(system)
    system.run_to_completion(limit=200_000_000)
    fir.validate()
    assert fir.total_messages() == fir.scaled(fir.SAMPLES) * (fir.STAGES - 1)


# ------------------------------------------------------------------- bitonic
def test_bitonic_window_bounds_outstanding_blocks():
    system = System(device="vl")
    bitonic = make_workload("bitonic", scale=0.1)
    bitonic.build(system)
    system.run_to_completion(limit=200_000_000)
    bitonic.validate()
    # All blocks accounted for in the master's result set.
    assert set(bitonic.sorted_blocks) == set(range(bitonic._blocks))
