"""Unit tests for transaction tracing (Figure 7 machinery)."""

from repro.sim.trace import EventKind, TraceRecorder, Transaction


def record_txn(trace, txn, sqi=1, data=None, req=None, vacate=None, fill=None, use=None):
    if data is not None:
        trace.record_at(EventKind.DATA_ARRIVE, data, txn, sqi)
    if req is not None:
        trace.record_at(EventKind.REQUEST_ARRIVE, req, txn, sqi)
    if vacate is not None:
        trace.record_at(EventKind.LINE_VACATE, vacate, txn, sqi)
    if fill is not None:
        trace.record_at(EventKind.LINE_FILL, fill, txn, sqi)
    if use is not None:
        trace.record_at(EventKind.FIRST_USE, use, txn, sqi)


def test_disabled_recorder_records_nothing(env):
    trace = TraceRecorder(env, enabled=False)
    trace.record(EventKind.DATA_ARRIVE, trace.new_transaction(), 1)
    assert trace.events == []


def test_transaction_ids_are_unique(env):
    trace = TraceRecorder(env)
    ids = [trace.new_transaction() for _ in range(100)]
    assert len(set(ids)) == 100


def test_reconstruction_groups_by_transaction(env):
    trace = TraceRecorder(env)
    record_txn(trace, 0, data=10, req=20, vacate=5, fill=30, use=40)
    record_txn(trace, 1, data=50, fill=60, vacate=45, use=70)
    txns = trace.transactions()
    assert len(txns) == 2
    assert txns[0].data_arrive == 10 and txns[0].first_use == 40
    assert txns[1].request_arrive is None


def test_speculative_detection(env):
    trace = TraceRecorder(env)
    record_txn(trace, 0, data=10, vacate=5, fill=30, use=40)  # no request
    record_txn(trace, 1, data=10, req=20, vacate=5, fill=30, use=40)
    txns = trace.transactions()
    assert txns[0].speculative
    assert not txns[1].speculative


def test_request_bound_and_potential_saving(env):
    trace = TraceRecorder(env)
    # Request (t=50) is the latest prerequisite; fill at 80.
    record_txn(trace, 0, data=10, req=50, vacate=20, fill=80, use=90)
    txn = trace.transactions()[0]
    assert txn.request_bound
    # A speculative push could have filled at max(data, vacate)=20: save 60.
    assert txn.potential_saving == 60


def test_not_request_bound_when_data_is_latest(env):
    trace = TraceRecorder(env)
    record_txn(trace, 0, data=60, req=50, vacate=20, fill=80, use=90)
    txn = trace.transactions()[0]
    assert not txn.request_bound
    assert txn.potential_saving == 0


def test_earliest_request_kept(env):
    trace = TraceRecorder(env)
    trace.record_at(EventKind.REQUEST_ARRIVE, 30, 0, 1)
    trace.record_at(EventKind.REQUEST_ARRIVE, 10, 0, 1)
    # Earliest matched request is the one the figure plots...
    txn = trace.transactions()[0]
    assert txn.request_arrive == 30  # first recorded wins (match order)


def test_load_to_use(env):
    trace = TraceRecorder(env)
    record_txn(trace, 0, data=1, fill=100, use=130, vacate=0)
    assert trace.transactions()[0].load_to_use == 30


def test_window_filters_on_fill_time(env):
    trace = TraceRecorder(env)
    record_txn(trace, 0, data=1, fill=100, use=110, vacate=0)
    record_txn(trace, 1, data=1, fill=300, use=310, vacate=0)
    window = trace.window(50, 200)
    assert [t.transaction_id for t in window] == [0]


def test_incomplete_transaction_flags(env):
    txn = Transaction(0, 1, data_arrive=5)
    assert not txn.complete
    assert not txn.speculative  # no fill yet
    assert txn.potential_saving == 0
    assert txn.load_to_use is None
