"""The live invariant checker: clean bills of health and seeded bugs.

The mutation tests are the checker's own test suite: monkeypatch a
deliberate hardware bug into the routing device — a specBuf
double-delivery, a dropped fetch-response — and assert the checker (or
the stall watchdog) catches exactly that class of violation.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import SimDeadlockError, VerificationError
from repro.eval.runner import run_workload, setting_by_name, standard_settings
from repro.system import System
from repro.verify.invariants import InvariantChecker, StallWatchdog

from tests.conftest import build_pingpong


def verified_system(device: str = "spamer", algorithm: str = "0delay",
                    **overrides) -> System:
    config = SystemConfig(num_cores=4, verify=True, **overrides)
    if device == "vl":
        return System(config=config, device="vl")
    return System(config=config, device=device, algorithm=algorithm)


# ------------------------------------------------------------------ clean runs
def test_clean_run_has_zero_violations():
    system = verified_system()
    build_pingpong(system, rounds=40)
    system.run_to_completion()
    assert system.verifier is not None
    system.verifier.quiesce()  # must not raise
    assert system.verifier.ok
    assert system.verifier.events_seen > 0


def test_clean_run_vl_baseline():
    system = verified_system(device="vl")
    build_pingpong(system, rounds=40)
    system.run_to_completion()
    system.verifier.quiesce()
    assert system.verifier.ok


@pytest.mark.parametrize("setting", standard_settings(),
                         ids=lambda s: s.label)
def test_run_workload_verify_flag_all_settings(setting):
    m = run_workload("ping-pong", setting, scale=0.02,
                     config=SystemConfig(num_cores=4), verify=True)
    assert m.messages_delivered > 0


def test_verify_does_not_perturb_timing():
    """The checker is observe-only: metrics are bit-identical with it on."""
    base = run_workload("ping-pong", standard_settings()[3], scale=0.02,
                        config=SystemConfig(num_cores=4))
    checked = run_workload("ping-pong", standard_settings()[3], scale=0.02,
                           config=SystemConfig(num_cores=4), verify=True)
    assert checked.exec_cycles == base.exec_cycles
    assert checked.push_attempts == base.push_attempts
    assert checked.latency_mean == base.latency_mean


# ----------------------------------------------------------- seeded bug: dup
def test_checker_catches_specbuf_double_delivery():
    """Mutation: after one speculative hit, requeue the entry anyway.

    The packet re-enters the mapping pipeline after a *hit* response and is
    eventually stashed and popped a second time — the double-delivery bug
    the conservation and lifecycle rules exist for.
    """
    system = verified_system()
    build_pingpong(system, rounds=30)
    device = system.device
    original = device._on_response
    fired = {"done": False}

    def double_delivering(entry, line, hit, speculative):
        original(entry, line, hit, speculative)
        if hit and speculative and not fired["done"]:
            fired["done"] = True
            entry.spec_entry_index = None
            # A real double-delivery bug would not free credits twice;
            # neutralize the pool so the injected re-dispatch models only
            # the duplicated stash.
            entry.message.credit_pool = None
            device.pipeline.requeue(entry)

    device._on_response = double_delivering
    system.run_to_completion(limit=50_000_000)
    assert fired["done"], "mutation never triggered (no speculative hit?)"
    with pytest.raises(VerificationError) as excinfo:
        system.verifier.quiesce()
    rules = {v.rule for v in excinfo.value.violations}
    assert "lifecycle/re-entry-after-hit" in rules
    assert rules & {
        "conservation/duplicate-delivery",
        "conservation/refill-of-retired-message",
    }


# ---------------------------------------------------------- seeded bug: drop
def test_checker_catches_dropped_fetch_response():
    """Mutation: the device silently swallows one stash dispatch.

    The consumer spins on a line nothing will fill: the stall watchdog
    aborts with a diagnostic, and quiesce flags the leaked in-flight
    record stuck at MAPPED.
    """
    system = verified_system(watchdog_cycles=20_000)
    build_pingpong(system, rounds=30)
    device = system.device
    original = device._dispatch
    fired = {"count": 0}

    def dropping(entry, line, speculative):
        fired["count"] += 1
        if fired["count"] == 5:
            return  # swallow the stash: no fill, no response, ever
        original(entry, line, speculative)

    device._dispatch = dropping
    device.pipeline._dispatch = dropping
    StallWatchdog(system).install()
    with pytest.raises(SimDeadlockError) as excinfo:
        system.run_to_completion(limit=50_000_000)
    assert "consumer" in excinfo.value.blocked
    leaks = system.verifier.check_quiesce()
    assert any(v.rule == "lifecycle/leaked-in-flight-record" for v in leaks)
    with pytest.raises(VerificationError):
        system.verifier.raise_if_violations()


# ------------------------------------------------- never-ablation regression
def test_never_ablation_raises_typed_deadlock():
    """The ``never`` setting stalls by construction; the watchdog must turn
    that into a diagnosable SimDeadlockError naming the blocked consumers
    instead of a silent hang (regression for the old exclude-from-lists
    workaround)."""
    setting = setting_by_name("never")
    config = SystemConfig(num_cores=4, watchdog_cycles=30_000)
    with pytest.raises(SimDeadlockError) as excinfo:
        run_workload("ping-pong", setting, scale=0.02, config=config)
    err = excinfo.value
    assert err.tick > 0
    assert "pingpong-a" in err.blocked and "pingpong-b" in err.blocked
    message = str(err)
    assert "no queue progress" in message
    assert "blocked threads" in message
    assert "buffered" in message  # the parked-packet dump names the SQI


def test_never_setting_is_offered():
    from repro.eval.runner import available_setting_names

    assert "never" in available_setting_names()


# ------------------------------------------------------------------ watchdog
def test_watchdog_defers_while_progress_happens():
    system = verified_system(watchdog_cycles=2_000)
    build_pingpong(system, rounds=50, compute=500)
    StallWatchdog(system).install()
    system.run_to_completion()  # must not raise despite the tiny window
    system.verifier.quiesce()


def test_checker_detach_stops_observing():
    system = verified_system()
    build_pingpong(system, rounds=5)
    system.verifier.detach()
    system.run_to_completion()
    assert system.verifier.events_seen == 0


def test_invariant_checker_attachable_to_plain_system(spamer_system):
    checker = InvariantChecker(spamer_system)
    build_pingpong(spamer_system, rounds=10)
    spamer_system.run_to_completion()
    checker.quiesce()
    assert checker.ok
