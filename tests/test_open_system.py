"""End-to-end tests for the open-system request layer.

Closed-batch byte-identity is pinned by the golden suites; this file
covers what they cannot: whole workloads running under open arrival
processes — request lifecycle ordering, sojourn accounting, churn,
labeled work-counter diagnostics, the collector/Perfetto request tracks,
and the closed-only guard rails.
"""

import json

import pytest

from repro.errors import WorkloadError
from repro.eval.runner import run_workload, setting_by_name
from repro.obs.collector import attach_collector, finalize_system
from repro.obs.perfetto import (
    PID_REQUESTS,
    REQUEST_FLOW_BASE,
    JsonlTraceSink,
    PerfettoTraceSink,
)
from repro.sim.request import ReqState, RequestLog, RequestRecord
from repro.workloads.arrival import ArrivalSpec, Poisson
from repro.workloads.base import WorkCounter
from repro.workloads.registry import make_workload

OPEN_WORKLOADS = ["ping-pong", "incast", "pipeline", "firewall", "FIR"]
CLOSED_WORKLOADS = ["halo", "sweep", "bitonic"]


def run_open(workload="incast", rate=0.002, churn=0.0, **kwargs):
    return run_workload(
        workload,
        setting_by_name("tuned"),
        scale=0.1,
        arrival=Poisson(rate=rate, churn=churn),
        return_system=True,
        **kwargs,
    )


# ---------------------------------------------------------------- lifecycle
def test_open_incast_completes_with_ordered_lifecycles():
    metrics, system = run_open()
    log = system.requests
    assert log.active
    records = log.records()
    assert records and all(r.completed for r in records)
    for r in records:
        assert r.arrival <= r.admission <= r.first_pop <= r.completion
        assert r.sojourn == r.completion - r.arrival
        assert r.queue_delay == r.admission - r.arrival >= 0
        assert r.service == r.completion - r.admission
        assert r.state is ReqState.COMPLETED
    # rids are dense creation-order, sessions/seqs consistent
    assert [r.rid for r in records] == list(range(len(records)))
    assert log.completed == len(records) == log.opened
    assert log.in_flight() == []


def test_open_run_reports_request_extras():
    metrics, system = run_open()
    extra = metrics.extra
    assert extra["request_count"] == system.requests.completed > 0
    assert extra["request_p50"] <= extra["request_p99"] <= extra["request_p999"]
    assert extra["request_mean"] > 0


def test_closed_run_keeps_request_layer_dormant():
    metrics, system = run_workload(
        "incast", setting_by_name("tuned"), scale=0.1, return_system=True
    )
    assert not system.requests.active
    assert system.requests.opened == 0
    assert not any(k.startswith("request_") for k in metrics.extra)


@pytest.mark.parametrize("workload", OPEN_WORKLOADS)
def test_every_open_capable_workload_runs_under_poisson(workload):
    metrics, system = run_open(workload=workload, rate=0.005)
    assert system.requests.completed > 0
    assert metrics.messages_delivered == metrics.messages_produced > 0


@pytest.mark.parametrize("workload", CLOSED_WORKLOADS)
def test_closed_only_workloads_reject_open_arrivals(workload):
    with pytest.raises(WorkloadError, match="closed-only"):
        make_workload(workload, scale=0.1, arrival=Poisson(rate=0.01))


def test_arrival_spec_accepted_by_run_workload():
    metrics, system = run_workload(
        "ping-pong",
        setting_by_name("vl"),
        scale=0.1,
        arrival=ArrivalSpec.make("poisson", rate=0.005),
        return_system=True,
    )
    assert system.requests.completed > 0


def test_session_quotas_only_on_open_capable_workloads():
    quotas = make_workload("incast", scale=0.1).session_quotas()
    assert quotas and all(n >= 1 for n in quotas.values())
    assert all(s.startswith("incast-prod") for s in quotas)
    with pytest.raises(WorkloadError, match="closed-only"):
        make_workload("halo", scale=0.1).session_quotas()


def test_open_arrivals_spread_admissions_over_time():
    """A slow Poisson source must admit requests across the run, not all
    at t=0 — the property that makes offered load meaningful."""
    _, system = run_open(rate=0.001)
    admissions = [r.admission for r in system.requests.records()]
    assert max(admissions) > min(admissions) > 0


# -------------------------------------------------------------------- churn
def test_churned_run_completes_and_validates():
    metrics, system = run_open(workload="pipeline", rate=0.005, churn=0.9)
    assert system.requests.completed == system.requests.opened > 0
    assert metrics.messages_delivered == metrics.messages_produced > 0


def test_churn_truncates_issue_counts():
    truncated = False
    for seed in range(6):
        _, full = run_open(workload="incast", rate=0.005, seed=seed)
        _, churned = run_open(
            workload="incast", rate=0.005, churn=0.95, seed=seed
        )
        assert churned.requests.opened <= full.requests.opened
        truncated |= churned.requests.opened < full.requests.opened
    assert truncated


# -------------------------------------------------------------- WorkCounter
def test_work_counter_overrun_names_the_offender():
    counter = WorkCounter(1, label="pipeline.q1:stage-a")
    counter.mark_done()
    with pytest.raises(WorkloadError, match="pipeline.q1:stage-a"):
        counter.mark_done()


def test_work_counter_retire_lowers_target():
    counter = WorkCounter(10, label="q")
    counter.mark_done(4)
    counter.retire(6)
    assert counter.target == 4 and counter.retired == 6
    assert counter.all_done()
    counter.retire(0)  # no-op
    assert counter.target == 4


def test_work_counter_retire_validation():
    counter = WorkCounter(10)
    counter.mark_done(8)
    with pytest.raises(WorkloadError, match="cannot retire"):
        counter.retire(5)  # would drop the target below done_count
    with pytest.raises(WorkloadError, match="negative"):
        counter.retire(-1)


def test_work_counter_retire_negative_names_the_offender():
    # Regression: the negative-amount diagnostic used to drop the counter
    # label, unlike every other WorkCounter error path.
    counter = WorkCounter(10, label="pipeline.q2:stage-b")
    with pytest.raises(WorkloadError, match="pipeline.q2:stage-b"):
        counter.retire(-3)


# -------------------------------------------------------------- RequestLog
def test_request_log_touch_and_complete_are_idempotent():
    log = RequestLog().activate()
    record = log.open("s", 0, arrival_tick=5, admission_tick=9)
    log.touch(record, 12)
    log.touch(record, 99)  # later touches no-op
    assert record.first_pop == 12
    log.complete(record, 20)
    log.complete(record, 99)
    assert record.completion == 20 and log.completed == 1
    assert log.sojourn_stats.n == 1 and log.percentile(50) == 15.0


def test_single_hop_completion_backfills_first_pop():
    log = RequestLog().activate()
    record = log.open("s", 0, arrival_tick=0, admission_tick=0)
    log.complete(record, 30)
    assert record.first_pop == 30  # stamped alongside the completion
    states = [s.state for s in record.stamps]
    assert states == [
        ReqState.ARRIVED,
        ReqState.ADMITTED,
        ReqState.FIRST_POP,
        ReqState.COMPLETED,
    ]


def test_empty_log_percentile_is_zero():
    assert RequestLog().percentile(99) == 0.0
    assert RequestRecord(0, "s", 0).sojourn is None


# ----------------------------------------------------- collector + Perfetto
def test_collector_counts_request_lifecycle_events():
    registries = []

    def attach(system):
        registries.append(attach_collector(system).registry)

    metrics, system = run_open(on_system=attach)
    registry = registries[0]
    completed = system.requests.completed
    assert registry.counter("request.completed") == completed
    assert registry.counter("request.arrived") == system.requests.opened
    finalize_system(system, registry)
    assert registry.gauge("request.completed") == float(completed)
    assert registry.gauge("request.sojourn.p99") == system.requests.percentile(99)


def test_perfetto_request_track_and_flows():
    sinks = []

    def attach(system):
        sinks.append(PerfettoTraceSink(system.hooks))

    _, system = run_open(on_system=attach)
    sink = sinks[0]
    completed = system.requests.completed
    req_events = [e for e in sink.events if e.get("pid") == PID_REQUESTS]
    assert req_events
    meta = [e for e in req_events if e["ph"] == "M"]
    assert any(e["args"]["name"] == "requests" for e in meta
               if e["name"] == "process_name")
    # one flow chain per request: s (arrived) ... f (completed), offset
    # so request flows never collide with transaction flows
    starts = [e for e in req_events if e["ph"] == "s"]
    ends = [e for e in req_events if e["ph"] == "f"]
    assert len(starts) == system.requests.opened
    assert len(ends) == completed
    assert all(e["id"] >= REQUEST_FLOW_BASE for e in starts + ends)
    assert all(e["bp"] == "e" for e in ends)
    instants = [e for e in req_events if e["ph"] == "i"]
    assert any(e["args"].get("sojourn") is not None for e in instants)


def test_jsonl_sink_streams_request_events():
    sinks = []

    def attach(system):
        sinks.append(JsonlTraceSink(system.hooks))

    _, system = run_open(on_system=attach)
    lines = [json.loads(l) for l in sinks[0].to_jsonl().splitlines()]
    req = [e for e in lines if e["ev"] == "request"]
    assert {e["state"] for e in req} == {
        "arrived", "admitted", "first-pop", "completed"
    }
    completed = [e for e in req if e["state"] == "completed"]
    assert all(e["sojourn"] >= 0 for e in completed)
    assert len(completed) == system.requests.completed
