"""Parallel-executor acceptance tests: equivalence, isolation, plumbing.

The headline guarantee of :mod:`repro.eval.parallel` is that fanning
independent simulations across worker processes is *unobservable* in the
results: the full Figure-8 matrix and batch reports must be byte-identical
between ``jobs=1`` and ``jobs=4``, and one run's failure must neither lose
the other runs' results nor arrive as an opaque ``PicklingError``.
"""

import dataclasses
import json

import pytest

from repro.errors import ConfigError, SimDeadlockError
from repro.eval.parallel import (
    RunRequest,
    execute_requests,
    resolve_jobs,
    run_requests,
)
from repro.eval.runner import (
    Setting,
    setting_by_name,
    standard_settings,
    tuned_setting,
)
from repro.workloads.registry import workload_names

SCALE = 0.05
SEED = 0xC0FFEE


def _fig8_requests():
    """The full Figure-8 matrix: 8 workloads × the 4 evaluated settings."""
    return [
        RunRequest.from_setting(w, s, scale=SCALE, seed=SEED)
        for w in workload_names()
        for s in standard_settings()
    ]


# ----------------------------------------------------------- equivalence
def test_fig8_matrix_parallel_is_byte_identical_to_serial():
    requests = _fig8_requests()
    serial = run_requests(requests, jobs=1)
    parallel = run_requests(requests, jobs=4)
    assert [dataclasses.asdict(m) for m in serial] == [
        dataclasses.asdict(m) for m in parallel
    ]
    # Byte-identical, not merely equal-within-epsilon.
    assert repr(serial) == repr(parallel)


def test_batch_report_json_is_identical_across_jobs():
    from repro.eval.batch import run_batch

    spec = {
        "name": "jobs-equivalence",
        "workloads": ["ping-pong", "incast"],
        "settings": ["vl", "tuned"],
        "seeds": [1, 2],
        "scale": SCALE,
    }
    serial = run_batch(spec, jobs=1)
    parallel = run_batch(spec, jobs=4)
    assert json.dumps(serial, sort_keys=True) == json.dumps(
        parallel, sort_keys=True
    )


def test_autotune_burst_grid_identical_across_jobs():
    """The (k, p_min) frontier grid fans out through the same executor,
    so the whole tune result — frontier order, metrics, winner — must be
    byte-identical between serial and two workers."""
    from repro.eval.autotune import autotune_burst, saturated_bus_config

    kwargs = dict(
        workload_name="incast",
        ks=(1, 2),
        p_mins=(0.0, 0.75),
        scale=0.02,
        seed=SEED,
        config=saturated_bus_config(cores=16),
    )
    serial = autotune_burst(jobs=1, **kwargs)
    parallel = autotune_burst(jobs=2, **kwargs)
    assert serial == parallel
    assert repr(serial.frontier()) == repr(parallel.frontier())
    assert serial.best.burst_k == parallel.best.burst_k
    assert serial.best.p_min == parallel.best.p_min


def test_sensitivity_sweep_parallel_matches_serial():
    from repro.eval.sweep import PAPER_TUNED_PARAMS, sensitivity_sweep

    kwargs = dict(params_grid=[PAPER_TUNED_PARAMS], scale=SCALE, seed=SEED)
    serial = sensitivity_sweep("incast", **kwargs)
    parallel = sensitivity_sweep("incast", jobs=2, **kwargs)
    assert [dataclasses.asdict(p.metrics) for p in serial] == [
        dataclasses.asdict(p.metrics) for p in parallel
    ]
    assert [(p.label, p.normalized_delay, p.normalized_energy) for p in serial] == [
        (p.label, p.normalized_delay, p.normalized_energy) for p in parallel
    ]


def test_replicated_comparison_parallel_matches_serial():
    from repro.eval.replication import replicated_comparison

    kwargs = dict(seeds=[1, 2], workloads=["ping-pong"], scale=SCALE)
    serial = replicated_comparison(**kwargs)
    parallel = replicated_comparison(jobs=2, **kwargs)
    assert serial.settings == parallel.settings
    assert serial.speedups == parallel.speedups
    assert serial.geomeans == parallel.geomeans


# ------------------------------------------------------- failure handling
def test_worker_crash_does_not_lose_other_results():
    good = RunRequest.from_setting(
        "ping-pong", setting_by_name("tuned"), scale=SCALE, seed=SEED
    )
    # The `never` ablation on fetch-skipping consumers deadlocks by
    # construction; the stall watchdog aborts it with a typed diagnostic.
    bad = RunRequest.from_setting(
        "incast", setting_by_name("never"), scale=SCALE, seed=SEED
    )
    outcomes = execute_requests([good, bad, good], jobs=3)
    assert [o.ok for o in outcomes] == [True, False, True]
    assert outcomes[0].metrics == outcomes[2].metrics
    error = outcomes[1].error
    assert isinstance(error, SimDeadlockError)
    # The typed diagnostics survived the worker->parent pickle round-trip.
    assert error.tick > 0
    assert error.blocked and all(isinstance(b, str) for b in error.blocked)


def test_run_requests_raises_first_submission_order_error():
    bad = RunRequest.from_setting(
        "incast", setting_by_name("never"), scale=SCALE, seed=SEED
    )
    good = RunRequest.from_setting(
        "ping-pong", setting_by_name("vl"), scale=SCALE, seed=SEED
    )
    with pytest.raises(SimDeadlockError) as excinfo:
        run_requests([good, bad], jobs=2)
    assert excinfo.value.tick > 0


def test_unpicklable_request_reports_config_error():
    lambda_setting = Setting("SPAMeR(lambda)", "spamer", lambda: None)
    request = RunRequest.from_setting("ping-pong", lambda_setting, scale=SCALE)
    with pytest.raises(ConfigError, match="picklable"):
        run_requests([request, request], jobs=2)


# ---------------------------------------------------------------- plumbing
def test_resolve_jobs_semantics():
    import os

    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    with pytest.raises(ConfigError):
        resolve_jobs(-2)


def test_tuned_setting_round_trips_through_pickle():
    import pickle

    from repro.spamer.delay import TunedDelay, TunedParams

    params = TunedParams(zeta=128, tau=48, delta=32, alpha=2, beta=1)
    setting = tuned_setting(params)
    rebuilt = pickle.loads(pickle.dumps(setting))
    assert rebuilt.label == setting.label
    algo = rebuilt.algorithm()
    assert isinstance(algo, TunedDelay) and algo.params == params


def test_cli_batch_and_run_accept_jobs(tmp_path, capsys):
    from repro.cli import main

    spec = {
        "name": "cli-jobs",
        "workloads": ["ping-pong"],
        "settings": ["vl", "tuned"],
        "seeds": [1],
        "scale": SCALE,
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    assert main(["batch", str(spec_path), "--jobs", "2"]) == 0
    assert "cli-jobs" in capsys.readouterr().out

    assert main(["run", "ping-pong", "--scale", str(SCALE),
                 "--jobs", "2"]) == 0
    assert "execution" in capsys.readouterr().out


# ------------------------------------------------- runner satellite fixes
def test_available_setting_names_cache_invalidates_on_registration():
    from repro.eval.runner import available_setting_names
    from repro.registry import register_device, unregister_device
    from repro.vlink.vlrd import VirtualLinkRoutingDevice

    before = available_setting_names()
    assert available_setting_names() == before  # cached path, same answer
    assert "cached-dev" not in before

    @register_device("cached-dev", description="cache invalidation probe")
    class CachedDevice(VirtualLinkRoutingDevice):
        kind = "CACHED"

    try:
        assert "cached-dev" in available_setting_names()
    finally:
        unregister_device("cached-dev")
    assert "cached-dev" not in available_setting_names()


def test_run_workload_traced_delegates_to_run_workload():
    from repro.errors import SimulationError
    from repro.eval.runner import run_workload_traced

    vl = standard_settings()[0]
    metrics, system = run_workload_traced("ping-pong", vl, scale=SCALE)
    assert system.trace.enabled
    assert metrics.exec_cycles == system.env.now

    # `limit` used to be silently ignored by the hand-rolled copy.
    with pytest.raises(SimulationError, match="limit"):
        run_workload_traced("ping-pong", vl, scale=SCALE, limit=10)

    # `on_system` used to be unsupported entirely.
    seen = []
    run_workload_traced("ping-pong", vl, scale=SCALE, on_system=seen.append)
    assert len(seen) == 1
