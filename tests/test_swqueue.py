"""Tests for the software queue baseline and the Figure 1 motivation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.mem.coherence import CoherentMemorySystem
from repro.sim.kernel import Environment
from repro.swqueue import (
    SoftwareQueue,
    motivation_experiment,
    run_software_pingpong,
)


def make_queue(capacity=4):
    env = Environment()
    mem = CoherentMemorySystem(env, SystemConfig(num_cores=4))
    return env, mem, SoftwareQueue(mem, base_addr=0x10000, capacity=capacity)


def test_queue_validation():
    env = Environment()
    mem = CoherentMemorySystem(env, SystemConfig(num_cores=4))
    with pytest.raises(ConfigError):
        SoftwareQueue(mem, base_addr=0x10000, capacity=0)
    with pytest.raises(ConfigError):
        SoftwareQueue(mem, base_addr=0x10001, capacity=4)


def test_spsc_fifo_order():
    env, mem, queue = make_queue(capacity=4)
    received = []

    def producer():
        for i in range(20):
            yield from queue.enqueue(0, i)

    def consumer():
        for _ in range(20):
            value = yield from queue.dequeue(1)
            received.append(value)

    p = env.process(producer())
    c = env.process(consumer())
    env.run_until_complete(env.all_of([p, c]))
    assert received == list(range(20))
    assert queue.enqueues == queue.dequeues == 20


def test_bounded_capacity_blocks_producer():
    env, mem, queue = make_queue(capacity=2)

    def producer():
        for i in range(4):
            yield from queue.enqueue(0, i)

    env.process(producer())
    # Without a consumer only `capacity` items can be enqueued.
    env.run(until=100_000)
    assert queue.enqueues == 2


def test_try_dequeue_empty_returns_none():
    env, mem, queue = make_queue()

    def attempt():
        value = yield from queue.try_dequeue(0)
        return value

    assert env.run_until_complete(env.process(attempt())) is None


@given(
    producers=st.integers(min_value=1, max_value=3),
    consumers=st.integers(min_value=1, max_value=3),
    per_producer=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=15, deadline=None)
def test_mpmc_conservation(producers, consumers, per_producer):
    """Property: every enqueued value dequeued exactly once, MPMC."""
    env = Environment()
    mem = CoherentMemorySystem(env, SystemConfig(num_cores=8))
    queue = SoftwareQueue(mem, base_addr=0x10000, capacity=4)
    total = producers * per_producer
    received = []

    def producer(pid):
        for i in range(per_producer):
            yield from queue.enqueue(pid, pid * 1000 + i)

    def consumer(cid, count):
        for _ in range(count):
            value = yield from queue.dequeue(producers + cid)
            received.append(value)

    counts = [total // consumers] * consumers
    counts[0] += total - sum(counts)
    procs = [env.process(producer(p)) for p in range(producers)]
    procs += [env.process(consumer(c, n)) for c, n in enumerate(counts)]
    env.run_until_complete(env.all_of(procs))
    expected = sorted(p * 1000 + i for p in range(producers) for i in range(per_producer))
    assert sorted(received) == expected
    mem.check_coherence_invariant()


def test_motivation_ordering():
    """Figure 1: Lc (software) > Lv (VL) >= Ls (SPAMeR)."""
    res = motivation_experiment(messages=150)
    sw, vl, sp = (
        res["software"].cycles_per_message,
        res["virtual-link"].cycles_per_message,
        res["spamer"].cycles_per_message,
    )
    assert sw > vl, "coherence-based queue should be slowest"
    assert sp <= vl * 1.02, "SPAMeR should not be slower than VL on ping-pong"
    # And SPAMeR halves the network traffic (one-way vs request+data).
    assert res["spamer"].coherence_packets < res["virtual-link"].coherence_packets


def test_software_pingpong_is_deterministic():
    a = run_software_pingpong(messages=50)
    b = run_software_pingpong(messages=50)
    assert a.total_cycles == b.total_cycles


# --------------------------------------------------------- coverage top-ups
def test_footprint_counts_head_tail_and_slots():
    from repro.units import CACHELINE_BYTES

    _env, _mem, queue = make_queue(capacity=4)
    # Head line + tail line + one line per slot.
    assert queue.footprint_bytes == 6 * CACHELINE_BYTES


def test_try_dequeue_success_returns_value_and_recycles():
    env, mem, queue = make_queue(capacity=2)

    def driver():
        yield from queue.enqueue(0, 77)
        first = yield from queue.try_dequeue(1)
        second = yield from queue.try_dequeue(1)
        return first, second

    first, second = env.run_until_complete(env.process(driver()))
    assert first == 77
    assert second is None  # drained
    assert queue.dequeues == 1
    # The slot's sequence word was recycled for the next lap.
    assert mem.peek_value(queue._seq_addr(0)) == queue.capacity


def test_ring_wraps_through_multiple_laps():
    env, _mem, queue = make_queue(capacity=2)
    received = []

    def producer():
        for i in range(7):
            yield from queue.enqueue(0, i)

    def consumer():
        for _ in range(7):
            value = yield from queue.dequeue(1)
            received.append(value)

    p = env.process(producer())
    c = env.process(consumer())
    env.run_until_complete(env.all_of([p, c]))
    assert received == list(range(7))  # FIFO across 3+ laps of the ring
