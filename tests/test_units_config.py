"""Unit tests for units helpers and SystemConfig (Table 1)."""

import pytest

from repro.config import CacheConfig, DEFAULT_CONFIG, SystemConfig
from repro.errors import ConfigError
from repro.units import (
    GiB,
    KiB,
    MiB,
    cycles_to_ms,
    cycles_to_ns,
    cycles_to_us,
    ns_to_cycles,
)


# ---------------------------------------------------------------------- units
def test_size_helpers():
    assert KiB(32) == 32 * 1024
    assert MiB(1) == 1024 * 1024
    assert GiB(8) == 8 * 1024 ** 3


def test_time_conversions_roundtrip():
    assert ns_to_cycles(1) == 2           # 2 GHz
    assert cycles_to_ns(2) == 1.0
    assert cycles_to_us(2_000) == 1.0
    assert cycles_to_ms(2_000_000) == 1.0
    assert ns_to_cycles(cycles_to_ns(12345)) == 12345


# ----------------------------------------------------------------- CacheConfig
def test_cache_geometry_derivation():
    l1d = CacheConfig(KiB(32), 2)
    assert l1d.num_lines == 512
    assert l1d.num_sets == 256


def test_cache_geometry_validation():
    with pytest.raises(ConfigError):
        CacheConfig(0, 2)
    with pytest.raises(ConfigError):
        CacheConfig(1000, 3)  # not divisible into sets


# ---------------------------------------------------------------- SystemConfig
def test_default_config_matches_table1():
    cfg = DEFAULT_CONFIG
    assert cfg.num_cores == 16
    assert cfg.clock_hz == 2_000_000_000
    assert cfg.l1d.size_bytes == KiB(32) and cfg.l1d.associativity == 2
    assert cfg.l1i.size_bytes == KiB(48) and cfg.l1i.associativity == 3
    assert cfg.l2.size_bytes == MiB(1) and cfg.l2.associativity == 16
    assert cfg.dram_bytes == GiB(8) and cfg.dram_mhz == 2400
    assert (
        cfg.prodbuf_entries
        == cfg.consbuf_entries
        == cfg.linktab_entries
        == cfg.specbuf_entries
        == 64
    )


def test_table1_rows_render_paper_text():
    rows = DEFAULT_CONFIG.table1_rows()
    assert rows["Cores"] == "16xAArch64 OoO CPU @ 2 GHz"
    assert "32 KiB private 2-way L1D" in rows["Caches"]
    assert "48 KiB private 3-way L1I" in rows["Caches"]
    assert "1 MiB shared 16-way mostly-inclusive L2" in rows["Caches"]
    assert rows["DRAM"] == "8 GiB 2400 MHz DDR4"
    assert rows["SRD"] == "64 entries per prodBuf, consBuf, linkTab, and specBuf"


def test_with_overrides_returns_new_config():
    cfg = DEFAULT_CONFIG.with_overrides(num_cores=4)
    assert cfg.num_cores == 4
    assert DEFAULT_CONFIG.num_cores == 16


@pytest.mark.parametrize(
    "field,value",
    [
        ("num_cores", 0),
        ("prodbuf_entries", 0),
        ("specbuf_entries", -1),
        ("bus_latency", -1),
        ("poll_interval", -2),
        ("lines_per_endpoint", 0),
    ],
)
def test_invalid_configs_rejected(field, value):
    with pytest.raises(ConfigError):
        SystemConfig(**{field: value})


def test_config_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_CONFIG.num_cores = 32  # type: ignore[misc]
