"""Tests for the CPU layer and the System facade."""

import pytest

from repro.config import SystemConfig
from repro.cpu.core import Core
from repro.cpu.isa import Instruction, Opcode, issue_cost_table
from repro.errors import ConfigError, SimulationError, WorkloadError
from repro.system import System


# ----------------------------------------------------------------------- ISA
def test_issue_cost_pairs_add_up():
    cfg = SystemConfig()
    costs = issue_cost_table(cfg)
    assert costs[Opcode.VL_SELECT] + costs[Opcode.VL_PUSH] == cfg.push_instruction_cost
    assert costs[Opcode.VL_SELECT] + costs[Opcode.VL_FETCH] == cfg.fetch_instruction_cost
    assert costs[Opcode.LOAD] == cfg.l1d.hit_latency


def test_core_issue_charges_cost(env):
    core = Core(env, 0, SystemConfig())
    ev = core.issue(Instruction(Opcode.VL_PUSH))
    env.run()
    assert ev.processed
    assert core.instructions_issued == 1


def test_core_compute_rejects_negative(env):
    core = Core(env, 0, SystemConfig())
    with pytest.raises(WorkloadError):
        core.compute(-1)


def test_core_pin_once(env):
    core = Core(env, 0, SystemConfig())

    def prog():
        yield env.timeout(1)

    core.pin(prog(), "first")
    with pytest.raises(WorkloadError):
        core.pin(prog(), "second")


# --------------------------------------------------------------------- System
def test_system_builds_requested_device():
    from repro.spamer.srd import SpamerRoutingDevice
    from repro.vlink.vlrd import VirtualLinkRoutingDevice

    vl = System(device="vl")
    assert type(vl.device) is VirtualLinkRoutingDevice
    assert not vl.supports_speculation
    sp = System(device="spamer", algorithm="tuned")
    assert isinstance(sp.device, SpamerRoutingDevice)
    assert sp.spec_default


def test_system_rejects_bad_device():
    with pytest.raises(ConfigError):
        System(device="quantum")


def test_vl_with_algorithm_rejected():
    with pytest.raises(ConfigError):
        System(device="vl", algorithm="tuned")


def test_spamer_default_algorithm_is_tuned():
    from repro.spamer.delay import TunedDelay

    system = System(device="spamer")
    assert isinstance(system.device.algorithm, TunedDelay)


def test_spawn_pins_one_thread_per_core(vl_system):
    def prog(ctx):
        yield ctx.core.compute(10)

    vl_system.spawn(0, prog, "t0")
    with pytest.raises(WorkloadError):
        vl_system.spawn(0, prog, "t1")


def test_run_to_completion_joins_all_threads(vl_system):
    done = []

    def prog(delay):
        def thread(ctx):
            yield from ctx.compute(delay)
            done.append(delay)
        return thread

    vl_system.spawn(0, prog(100), "a")
    vl_system.spawn(1, prog(300), "b")
    end = vl_system.run_to_completion()
    assert end == 300
    assert sorted(done) == [100, 300]


def test_run_to_completion_deadlock_detected(vl_system):
    lib = vl_system.library
    q = lib.create_queue()
    cons = lib.open_consumer(q, 0)

    def starved(ctx):
        yield from ctx.pop(cons)  # no producer ever pushes

    vl_system.spawn(0, starved, "starved")
    with pytest.raises(SimulationError):
        vl_system.run_to_completion(limit=200_000)


def test_thread_context_pinning_check(vl_system):
    lib = vl_system.library
    q = lib.create_queue()
    prod = lib.open_producer(q, core_id=2)

    def wrong_core(ctx):
        yield from ctx.push(prod, 1)

    vl_system.spawn(0, wrong_core, "wrong")
    with pytest.raises(WorkloadError):
        vl_system.run_to_completion(limit=10_000)


def test_consumer_line_cycles_aggregate(vl_system):
    from tests.conftest import build_pingpong

    build_pingpong(vl_system, rounds=10)
    vl_system.run_to_completion(limit=10_000_000)
    empty, valid = vl_system.consumer_line_cycles()
    assert empty > 0 and valid > 0
    assert empty + valid == pytest.approx(vl_system.env.now, abs=1)


def test_message_accounting(vl_system):
    from tests.conftest import build_pingpong

    build_pingpong(vl_system, rounds=15)
    vl_system.run_to_completion(limit=10_000_000)
    assert vl_system.messages_produced() == 15
    assert vl_system.messages_delivered() == 15
