"""Shared fixtures: small systems and configurations for fast tests."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.sim.kernel import Environment
from repro.sim.sched import scheduler_names
from repro.system import System


@pytest.fixture(params=scheduler_names())
def env(request) -> Environment:
    """A bare Environment, parametrized over every registered pending-queue
    strategy — kernel-level unit tests must hold under all of them."""
    return Environment(scheduler=request.param)


@pytest.fixture
def small_config() -> SystemConfig:
    """A reduced configuration that keeps unit tests fast."""
    return SystemConfig(num_cores=4)


def build_pingpong(system: System, rounds: int = 50, compute: int = 100):
    """Wire a 1:1 producer/consumer pair; returns the collected payloads."""
    lib = system.library
    q = lib.create_queue()
    prod = lib.open_producer(q, core_id=0)
    cons = lib.open_consumer(q, core_id=1)
    received = []

    def producer(ctx):
        for i in range(rounds):
            yield from ctx.push(prod, i)
            yield from ctx.compute(compute)

    def consumer(ctx):
        for _ in range(rounds):
            msg = yield from ctx.pop(cons)
            received.append(msg.payload)
            yield from ctx.compute(compute)

    system.spawn(0, producer, "producer")
    system.spawn(1, consumer, "consumer")
    return received


@pytest.fixture
def vl_system(small_config) -> System:
    return System(config=small_config, device="vl")


@pytest.fixture
def spamer_system(small_config) -> System:
    return System(config=small_config, device="spamer", algorithm="0delay")
