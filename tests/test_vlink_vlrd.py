"""Unit tests for the Virtual-Link routing device."""

import pytest

from repro.config import SystemConfig
from repro.errors import RegistrationError
from repro.mem.address import Segment
from repro.mem.bus import CoherenceNetwork
from repro.mem.cacheline import ConsumerLine
from repro.sim.kernel import Environment
from repro.vlink.endpoint import ConsumerEndpoint
from repro.vlink.linktab import LinkTab
from repro.vlink.packets import ConsRequest, Message
from repro.vlink.vlrd import VirtualLinkRoutingDevice


@pytest.fixture
def device(env):
    cfg = SystemConfig(num_cores=4)
    return VirtualLinkRoutingDevice(env, cfg, CoherenceNetwork(env, cfg))


def make_message(env, sqi=1, payload="data", txn=0):
    return Message(payload=payload, sqi=sqi, producer_id=0, seq=0,
                   transaction_id=txn, produced_at=env.now)


def make_line(env, addr=0x1000):
    return ConsumerLine(env, addr=addr, endpoint_id=0, index=0)


def make_request(env, line, sqi=1):
    return ConsRequest(sqi=sqi, line=line, issued_at=env.now)


def test_data_without_request_is_buffered(env, device):
    device.accept_push(make_message(env))
    env.run()
    assert device.stats.get("buffered") == 1
    assert len(device.linktab.row(1).buffered_data) == 1
    assert device.stats.get("push_attempts") == 0


def test_request_without_data_is_pending(env, device):
    line = make_line(env)
    device.accept_request(make_request(env, line))
    env.run()
    assert len(device.linktab.row(1).pending_requests) == 1


def test_data_matches_pending_request(env, device):
    line = make_line(env)
    device.accept_request(make_request(env, line))
    env.run()
    device.accept_push(make_message(env, payload="hello"))
    env.run()
    assert line.state.value == "valid"
    assert line.data.payload == "hello"
    assert device.stats.get("push_hits") == 1
    assert device.failure_rate() == 0.0


def test_request_matches_buffered_data(env, device):
    device.accept_push(make_message(env, payload="early"))
    env.run()
    line = make_line(env)
    device.accept_request(make_request(env, line))
    env.run()
    assert line.data.payload == "early"


def test_push_to_valid_line_fails_and_retries(env, device):
    line = make_line(env)
    line.try_fill("occupying")
    device.accept_request(make_request(env, line))
    env.run()
    device.accept_push(make_message(env, payload="blocked"))
    env.run()
    # The push failed (line busy) and the packet re-entered the buffering
    # queue awaiting a fresh request.
    assert device.stats.get("push_failures") == 1
    assert len(device.linktab.row(1).buffered_data) == 1
    # A new request after the line is vacated delivers it.
    line.consume()
    device.accept_request(make_request(env, line))
    env.run()
    assert line.data.payload == "blocked"
    assert device.stats.get("push_hits") == 1


def test_duplicate_requests_coalesce(env, device):
    line = make_line(env)
    for _ in range(5):
        device.accept_request(make_request(env, line))
    env.run()
    assert len(device.linktab.row(1).pending_requests) == 1
    assert device.stats.get("requests_coalesced") == 4
    assert device._consbuf_occupancy == 1


def test_requests_for_different_lines_do_not_coalesce(env, device):
    a, b = make_line(env, 0x1000), make_line(env, 0x2000)
    device.accept_request(make_request(env, a))
    device.accept_request(make_request(env, b))
    env.run()
    assert len(device.linktab.row(1).pending_requests) == 2


def test_consbuf_overflow_drops_requests(env):
    cfg = SystemConfig(num_cores=4, consbuf_entries=2)
    device = VirtualLinkRoutingDevice(env, cfg, CoherenceNetwork(env, cfg))
    lines = [make_line(env, 0x1000 + i * 0x1000) for i in range(4)]
    for line in lines:
        device.accept_request(make_request(env, line))
    env.run()
    assert device.stats.get("requests_dropped") == 2


def test_per_sqi_fifo_order(env, device):
    line = make_line(env)
    payloads = []
    for i in range(4):
        device.accept_push(make_message(env, payload=i, txn=i))
    env.run()
    for _ in range(4):
        device.accept_request(make_request(env, line))
        env.run()
        payloads.append(line.consume().payload)
    assert payloads == [0, 1, 2, 3]


def test_fifo_kept_when_fresh_data_arrives_behind_backlog(env, device):
    device.accept_push(make_message(env, payload="first"))
    env.run()
    device.accept_push(make_message(env, payload="second"))
    env.run()
    line = make_line(env)
    device.accept_request(make_request(env, line))
    env.run()
    assert line.consume().payload == "first"


def test_admission_two_tier_pools(env, device):
    device.linktab.row(1)
    device.linktab.row(2)
    device.finalize_capacity()
    grants = []
    # Shared pool first...
    for _ in range(10):
        ev, pool = device.acquire_entry(1)
        grants.append(pool)
        assert ev.triggered
    assert all(p == "shared" for p in grants)
    # Exhaust shared (60 shared for 2 SQIs with reserve 2 each).
    for _ in range(50):
        device.acquire_entry(1)
    ev, pool = device.acquire_entry(1)
    assert pool == "reserved"
    assert ev.triggered
    # Reserve for SQI 2 is independent.
    ev2, pool2 = device.acquire_entry(2)
    assert pool2 == "reserved" and ev2.triggered


def test_release_returns_to_correct_pool(env, device):
    device.linktab.row(1)
    device.finalize_capacity()
    ev, pool = device.acquire_entry(1)
    used = device.entries_in_use
    device.release_entry(1, pool)
    assert device.entries_in_use == used - 1


def test_spec_hooks_rejected_on_baseline(env, device):
    seg = Segment(0x1000, 4096)
    endpoint = ConsumerEndpoint(env, 0, 1, seg, 0, 1, spec_enabled=True)
    with pytest.raises(RegistrationError):
        device.register_spec_target(endpoint)


def test_linktab_capacity(env):
    tab = LinkTab(2)
    tab.row(1)
    tab.row(2)
    with pytest.raises(RegistrationError):
        tab.row(3)
    assert 1 in tab and 3 not in tab
    assert len(tab) == 2
