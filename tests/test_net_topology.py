"""Unit tests for the interconnect topology layer (repro.net)."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.net.topology import (
    Topology,
    build_topology,
    derive_mesh_dims,
    register_topology,
    resolve_topology,
    topology_names,
    unregister_topology,
)
from repro.sim.hooks import HookBus, LinkHook


def cfg(**overrides):
    defaults = dict(num_cores=16, bus_occupancy=3, bus_latency=36, link_latency=12)
    defaults.update(overrides)
    return SystemConfig(**defaults)


# ----------------------------------------------------------------- registry
def test_builtin_topologies_registered():
    assert topology_names() == ["crossbar", "mesh", "ring", "single-bus", "torus"]


def test_resolve_unknown_topology_lists_available():
    with pytest.raises(ConfigError, match="single-bus"):
        resolve_topology("hypercube")


def test_register_and_unregister_custom_topology(env):
    @register_topology("test-line", description="degenerate test fabric")
    class LineTopology(Topology):
        @property
        def num_nodes(self):
            return self.config.num_cores

        def core_node(self, core_id):
            return core_id

        def srd_node(self, srd_index):
            return 0

        def _compute_route(self, src, dst):
            return []

    try:
        assert resolve_topology("test-line") is LineTopology
        built = build_topology("test-line", env, cfg())
        assert isinstance(built, LineTopology)
        assert built.name == "test-line"
        assert LineTopology.description == "degenerate test fabric"
    finally:
        unregister_topology("test-line")
    with pytest.raises(ConfigError):
        resolve_topology("test-line")


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigError, match="already registered"):
        register_topology("mesh")(type("Dup", (Topology,), {}))


# ---------------------------------------------------------------- geometry
def test_derive_mesh_dims_most_square():
    assert derive_mesh_dims(8) == (2, 4)
    assert derive_mesh_dims(16) == (4, 4)
    assert derive_mesh_dims(32) == (4, 8)
    assert derive_mesh_dims(64) == (8, 8)
    assert derive_mesh_dims(7) == (1, 7)  # prime degenerates to a line
    assert derive_mesh_dims(1) == (1, 1)


# ---------------------------------------------------------------- mesh/XY
def test_mesh_xy_routing_goes_x_then_y(env):
    mesh = build_topology("mesh", env, cfg(num_cores=16))  # 4x4
    # node 0 (0,0) -> node 10 (2,2): two east hops then two south hops.
    names = [link.name for link in mesh.route(0, 10)]
    assert names == ["mesh.e[0,0]", "mesh.e[0,1]", "mesh.s[0,2]", "mesh.s[1,2]"]
    assert mesh.hops(0, 10) == 4
    # Reverse direction uses the opposite directed links (west, north).
    back = [link.name for link in mesh.route(10, 0)]
    assert back == ["mesh.w[2,2]", "mesh.w[2,1]", "mesh.n[2,0]", "mesh.n[1,0]"]


def test_mesh_same_node_route_is_empty(env):
    mesh = build_topology("mesh", env, cfg(num_cores=16))
    assert mesh.route(5, 5) == ()
    assert mesh.hops(5, 5) == 0


def test_mesh_srd_placement_interior_and_spread(env):
    mesh = build_topology("mesh", env, cfg(num_cores=16))  # 1 shard
    assert mesh.srd_node(0) == 8  # mid-scan node, not a corner
    sharded = build_topology("mesh", env, cfg(num_cores=16, num_srds=4))
    nodes = [sharded.srd_node(i) for i in range(4)]
    assert nodes == sorted(set(nodes))  # distinct, monotone
    assert all(0 <= node < 16 for node in nodes)


def test_mesh_respects_explicit_dims(env):
    mesh = build_topology("mesh", env, cfg(num_cores=8, mesh_dims=(2, 4),
                                           topology="mesh"))
    assert (mesh.rows, mesh.cols) == (2, 4)
    assert mesh.num_nodes == 8


def test_mesh_transit_latency_per_hop(env):
    config = cfg(num_cores=16)
    mesh = build_topology("mesh", env, config)
    done = []
    # 1 hop: occupancy (3) + link latency (12).
    mesh.transit("stash", 0, 1).subscribe(lambda e: done.append(env.now))
    env.run()
    assert done == [15]
    # Same-node: local port serialization only.
    done.clear()
    mesh.transit("stash", 3, 3).subscribe(lambda e: done.append(env.now))
    env.run()
    assert done == [env.now]  # fired exactly at completion
    assert mesh.response_latency(0, 2) == 2 * config.link_latency
    assert mesh.response_latency(4, 4) == config.link_latency  # floor of 1 hop


def test_mesh_multi_hop_is_store_and_forward(env):
    mesh = build_topology("mesh", env, cfg(num_cores=16))
    done = []
    start = env.now
    mesh.transit("stash", 0, 3).subscribe(lambda e: done.append(env.now))
    env.run()
    # 3 hops, each paying serialization then propagation, sequentially.
    assert done == [start + 3 * (3 + 12)]


# ------------------------------------------------------------- contention
def test_link_contention_accumulates_wait_cycles(env):
    mesh = build_topology("mesh", env, cfg(num_cores=16))
    done = []
    for _ in range(3):
        mesh.transit("stash", 0, 1).subscribe(lambda e: done.append(env.now))
    env.run()
    # Serialization spacing on the shared east link: 3 cycles apart.
    assert done == [15, 18, 21]
    link = next(l for l in mesh.links() if l.name == "mesh.e[0,0]")
    assert link.packets == 3
    assert link.busy_cycles == 9
    # Second packet queued 3 cycles, third 6.
    assert link.wait_cycles == 9
    assert mesh.wait_cycles == 9


def test_disjoint_mesh_paths_do_not_contend(env):
    mesh = build_topology("mesh", env, cfg(num_cores=16))
    done = []
    mesh.transit("stash", 0, 1).subscribe(lambda e: done.append(("a", env.now)))
    mesh.transit("stash", 4, 5).subscribe(lambda e: done.append(("b", env.now)))
    env.run()
    assert done == [("a", 15), ("b", 15)]
    assert mesh.wait_cycles == 0


def test_link_report_and_utilization(env):
    mesh = build_topology("mesh", env, cfg(num_cores=16))
    mesh.transit("stash", 0, 1)
    env.run()
    report = mesh.link_report(elapsed=100)
    used = [row for row in report if row["packets"]]
    assert used == [
        {
            "link": "mesh.e[0,0]",
            "packets": 1,
            "busy_cycles": 3,
            "wait_cycles": 0,
            "utilization": 0.03,
        }
    ]
    assert mesh.utilization(elapsed=100) == pytest.approx(
        3 / (100 * len(mesh.links()))
    )
    assert mesh.utilization(elapsed=0) == 0.0 if env.now == 0 else True


# ------------------------------------------------------------------- ring
def test_ring_takes_shorter_arc_clockwise_on_ties(env):
    ring = build_topology("ring", env, cfg(num_cores=8))
    assert [l.name for l in ring.route(0, 2)] == ["ring.cw[0]", "ring.cw[1]"]
    assert [l.name for l in ring.route(0, 6)] == ["ring.ccw[0]", "ring.ccw[7]"]
    # Exact tie (distance 4 both ways) goes clockwise.
    assert [l.name for l in ring.route(0, 4)][0] == "ring.cw[0]"
    assert ring.hops(0, 4) == 4
    assert ring.hops(1, 1) == 0
    assert ring.route(3, 3) == ()


def test_ring_srd_placement(env):
    ring = build_topology("ring", env, cfg(num_cores=8, num_srds=2))
    assert [ring.srd_node(i) for i in range(2)] == [0, 4]


# --------------------------------------------------------------- crossbar
def test_crossbar_two_hop_routes_and_endpoint_contention(env):
    xbar = build_topology("crossbar", env, cfg(num_cores=4))
    assert xbar.num_nodes == 5  # 4 cores + 1 SRD
    assert xbar.srd_node(0) == 4
    names = [l.name for l in xbar.route(0, xbar.srd_node(0))]
    assert names == ["xbar.in[core0]", "xbar.out[srd0]"]
    done = []
    # Two packets from different sources to the same destination: no
    # ingress contention, but they serialize on the shared egress link.
    xbar.transit("push-data", 0, 4).subscribe(lambda e: done.append(env.now))
    xbar.transit("push-data", 1, 4).subscribe(lambda e: done.append(env.now))
    env.run()
    assert done == [30, 33]  # 2 hops x (3+12); second waits 3 at egress
    egress = next(l for l in xbar.links() if l.name == "xbar.out[srd0]")
    assert egress.wait_cycles == 3


# ------------------------------------------------------------- single-bus
def test_single_bus_matches_historical_arithmetic(env):
    bus = build_topology("single-bus", env, cfg())
    done = []
    for _ in range(3):
        bus.transit("stash", 0, 5).subscribe(lambda e: done.append(env.now))
    env.run()
    # occupancy(3) + latency(36), 3-cycle serialization spacing — the
    # exact pre-topology CoherenceNetwork numbers (tests/test_mem_bus.py).
    assert done == [39, 42, 45]
    assert bus.response_latency(0, 15) == 36  # distance-free
    assert bus.hops(0, 15) == 1
    assert bus.links() == []  # no per-link reporting on the bus model
    assert bus.wait_cycles == 0
    assert bus.busy_cycles == 9


def test_single_bus_multichannel_picks_earliest_free(env):
    bus = build_topology("single-bus", env, cfg(bus_channels=2))
    done = []
    for _ in range(2):
        bus.transit("stash", 0, 1).subscribe(lambda e: done.append(env.now))
    env.run()
    assert done == [39, 39]  # two channels, no serialization


# ------------------------------------------------------------------ hooks
def test_link_hook_published_per_traversal(env):
    hooks = HookBus()
    seen = []
    hooks.subscribe(LinkHook, seen.append)
    mesh = build_topology("mesh", env, cfg(num_cores=16), hooks=hooks)
    mesh.transit("stash", 0, 2)
    env.run()
    assert [e.link for e in seen] == ["mesh.e[0,0]", "mesh.e[0,1]"]
    assert all(e.kind == "stash" and (e.src, e.dst) == (0, 2) for e in seen)


def test_no_link_hooks_without_subscribers(env):
    hooks = HookBus()
    mesh = build_topology("mesh", env, cfg(num_cores=16), hooks=hooks)
    mesh.transit("stash", 0, 1)
    env.run()  # wants() gate: publish never constructs events
    assert hooks.errors == []


def test_single_bus_never_publishes_link_hooks(env):
    hooks = HookBus()
    seen = []
    hooks.subscribe(LinkHook, seen.append)
    bus = build_topology("single-bus", env, cfg(), hooks=hooks)
    bus.transit("stash", 0, 1)
    env.run()
    assert seen == []
