"""Focused tests for the queue library's less-travelled paths."""

import pytest

from repro.config import SystemConfig
from repro.mem.bus import PacketKind
from repro.mem.cacheline import LineState
from repro.system import System


def make_1to1(config=None, device="vl", algorithm=None):
    system = System(config=config or SystemConfig(num_cores=4),
                    device=device, algorithm=algorithm)
    q = system.library.create_queue()
    prod = system.library.open_producer(q, 0)
    cons = system.library.open_consumer(q, 1)
    return system, prod, cons


# ------------------------------------------------------------ stale-scan path
def test_stale_scan_recovers_parked_message():
    """A message parked in a non-current line is recovered by the forward
    scan after stale_scan_threshold cycles."""
    cfg = SystemConfig(num_cores=4, stale_scan_threshold=256)
    system = System(config=cfg, device="spamer", algorithm="0delay")
    q = system.library.create_queue()
    cons = system.library.open_consumer(q, 1, num_lines=4)
    got = []

    # Park a message directly in line 2 while the consumer waits on line 0.
    from repro.vlink.packets import Message

    parked = Message(payload="parked", sqi=q, producer_id=0, seq=0,
                     transaction_id=0, produced_at=0)
    cons.lines[2].try_fill(parked, transaction_id=0)

    def consumer(ctx):
        msg = yield from ctx.pop(cons)
        got.append(msg.payload)

    system.spawn(1, consumer, "c")
    system.run_to_completion(limit=1_000_000)
    assert got and got[0] == "parked"
    assert cons.pops == 1


def test_stale_scan_does_not_fire_before_threshold():
    cfg = SystemConfig(num_cores=4, stale_scan_threshold=100_000)
    system = System(config=cfg, device="spamer", algorithm="0delay")
    q = system.library.create_queue()
    cons = system.library.open_consumer(q, 1, num_lines=4)
    cons.lines[2].try_fill("parked")

    def consumer(ctx):
        msg = yield from ctx.pop_until(cons, lambda: ctx.now > 5_000)
        assert msg is None

    system.spawn(1, consumer, "c")
    system.run_to_completion(limit=1_000_000)
    assert cons.lines[2].state is LineState.VALID  # still parked


# -------------------------------------------------------------- refetch backoff
def test_refetch_backoff_limits_request_packets():
    """A consumer stranded for a long time sends only O(log t) refetches."""
    cfg = SystemConfig(num_cores=4, refetch_interval=128)
    system = System(config=cfg, device="vl")
    q = system.library.create_queue()
    cons = system.library.open_consumer(q, 1)
    system.library.open_producer(q, 0)  # never pushes

    def consumer(ctx):
        msg = yield from ctx.pop_until(cons, lambda: ctx.now > 60_000)
        assert msg is None

    system.spawn(1, consumer, "c")
    system.run_to_completion(limit=1_000_000)
    # 60k cycles of stall: backoff 128,256,...,32768 -> <= ~10 requests.
    assert system.network.packets(PacketKind.REQUEST) <= 10


# ------------------------------------------------------------- spin-then-yield
def test_spin_then_yield_coarsens_detection():
    def run(spin_then_yield):
        cfg = SystemConfig(num_cores=4, spin_then_yield=spin_then_yield,
                           spin_threshold=64, yield_penalty=400)
        system, prod, cons = make_1to1(config=cfg)
        done = []

        def producer(ctx):
            yield from ctx.compute(2_000)  # force a long consumer wait
            yield from ctx.push(prod, "late")

        def consumer(ctx):
            msg = yield from ctx.pop(cons)
            done.append(ctx.now)

        system.spawn(0, producer, "p")
        system.spawn(1, consumer, "c")
        system.run_to_completion(limit=1_000_000)
        return done[0]

    assert run(True) >= run(False)


# ------------------------------------------------------------------ tracing
def test_trace_records_full_transaction_through_device():
    system = System(device="vl", trace=True)
    q = system.library.create_queue()
    prod = system.library.open_producer(q, 0)
    cons = system.library.open_consumer(q, 1)

    def producer(ctx):
        yield from ctx.push(prod, "x")

    def consumer(ctx):
        yield from ctx.pop(cons)

    system.spawn(0, producer, "p")
    system.spawn(1, consumer, "c")
    system.run_to_completion(limit=1_000_000)
    txns = [t for t in system.trace.transactions() if t.line_fill is not None]
    assert len(txns) == 1
    t = txns[0]
    assert t.complete
    assert t.data_arrive is not None and t.request_arrive is not None
    # Prerequisite ordering: vacate <= fill, data <= fill, first use >= fill.
    assert t.line_vacate <= t.line_fill
    assert t.data_arrive <= t.line_fill
    assert t.first_use >= t.line_fill


def test_trace_vacate_attributed_to_next_transaction():
    system = System(device="vl", trace=True)
    q = system.library.create_queue()
    prod = system.library.open_producer(q, 0)
    cons = system.library.open_consumer(q, 1)

    def producer(ctx):
        for i in range(2):
            yield from ctx.push(prod, i)
            yield from ctx.compute(500)

    def consumer(ctx):
        for _ in range(2):
            yield from ctx.pop(cons)
            yield from ctx.compute(100)

    system.spawn(0, producer, "p")
    system.spawn(1, consumer, "c")
    system.run_to_completion(limit=1_000_000)
    txns = sorted(
        (t for t in system.trace.transactions() if t.line_fill is not None),
        key=lambda t: t.line_fill,
    )
    assert len(txns) == 2
    # The second transaction's vacate is the consume time of the first.
    assert txns[1].line_vacate >= txns[0].first_use


# --------------------------------------------------------------- multi-queue
def test_consumer_thread_multiplexes_queues():
    """One thread popping two queues (halo-style) stays correct."""
    system = System(device="spamer", algorithm="tuned")
    lib = system.library
    qa, qb = lib.create_queue(), lib.create_queue()
    pa, pb = lib.open_producer(qa, 0), lib.open_producer(qb, 0)
    ca, cb = lib.open_consumer(qa, 1), lib.open_consumer(qb, 1)
    got = []

    def producer(ctx):
        for i in range(10):
            yield from ctx.push(pa, ("a", i))
            yield from ctx.push(pb, ("b", i))
            yield from ctx.compute(300)

    def consumer(ctx):
        for _ in range(10):
            msg_a = yield from ctx.pop(ca)
            msg_b = yield from ctx.pop(cb)
            got.append((msg_a.payload, msg_b.payload))
            yield from ctx.compute(150)

    system.spawn(0, producer, "p")
    system.spawn(1, consumer, "c")
    system.run_to_completion(limit=10_000_000)
    assert [g[0] for g in got] == [("a", i) for i in range(10)]
    assert [g[1] for g in got] == [("b", i) for i in range(10)]
