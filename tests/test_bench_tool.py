"""Unit tests for tools/bench.py — the events/sec measurement fix.

The parallel leg's wall time must cover the simulation work only: the
worker pool is created and warmed *before* the clock starts.  A fake clock
that is advanced by a fake pool's spawn/submit operations proves the spawn
cost stays outside the timed region — the regression that motivated the
fix (pool spawn dominating small CI matrices and deflating events/sec).
"""

import importlib.util
from pathlib import Path

import pytest

BENCH_PATH = Path(__file__).resolve().parents[1] / "tools" / "bench.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_tool", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class FakeClock:
    """Manually-advanced perf_counter stand-in."""

    def __init__(self) -> None:
        self.t = 0.0

    def advance(self, dt: float) -> None:
        self.t += dt

    def __call__(self) -> float:
        return self.t


class FakeFuture:
    def __init__(self, value):
        self._value = value

    def result(self):
        return self._value


class FakePool:
    """Pool whose *construction* costs 100 fake seconds (the spawn) and
    whose submits cost 1 each — so the timed region is measurable exactly."""

    def __init__(self, clock: FakeClock, spawn_cost: float = 100.0) -> None:
        self.clock = clock
        self.submitted = []
        clock.advance(spawn_cost)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args):
        self.clock.advance(1.0)
        self.submitted.append((fn, args))
        return FakeFuture(f"ran:{args[0] if args else ''}")


def test_measure_parallel_excludes_pool_spawn(bench):
    clock = FakeClock()
    pools = []

    def pool_factory():
        pool = FakePool(clock, spawn_cost=100.0)
        pools.append(pool)
        return pool

    requests = ["r0", "r1", "r2"]
    metrics, wall = bench.measure_parallel(
        requests, jobs=2, clock=clock, pool_factory=pool_factory
    )
    # Timed region = the three real submits only: neither the 100s spawn
    # nor the two warm-up submits may leak into the wall time.
    assert wall == pytest.approx(3.0)
    assert metrics == ["ran:r0", "ran:r1", "ran:r2"]
    (pool,) = pools
    warmups = [s for s in pool.submitted if s[0] is bench._warm_worker]
    assert len(warmups) == 2  # one per worker, all before the clock started
    assert pool.submitted[:2] == warmups


def test_measure_parallel_empty_requests(bench):
    metrics, wall = bench.measure_parallel([], jobs=4)
    assert metrics == [] and wall >= 0.0


def test_measure_serial_counts_kernel_events(bench):
    requests = bench.build_requests(["ping-pong"], ["tuned"], 0.02, 0xC0FFEE)
    metrics, wall, events = bench.measure_serial(requests)
    assert len(metrics) == 1
    assert events > 0 and wall > 0.0
    assert metrics[0].exec_cycles > 0


def test_obs_overhead_gate_document(bench):
    """Gate structure with a deterministic fake clock (each leg reads the
    clock twice, so every leg measures exactly 0.5 fake seconds and both
    overheads are 0%)."""
    clock = FakeClock()

    def reading():
        clock.advance(0.5)
        return clock.t

    result = bench.measure_obs_overhead(
        repeats=1, scale=0.01, threshold_pct=3.0, clock=reading
    )
    assert result["name"] == "obs-overhead-gate"
    assert result["off_s"] == result["null_s"] == result["on_s"] == 0.5
    assert result["overhead_disabled_pct"] == 0.0
    assert result["pass"] is True
    assert result["matrix"]["repeats"] == 1
