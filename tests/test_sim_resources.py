"""Unit and property tests for Resource, Store and FifoServer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.kernel import Environment
from repro.sim.resources import FifoServer, Resource, Store


# ------------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity(env):
    res = Resource(env, capacity=2)
    assert res.acquire().triggered
    assert res.acquire().triggered
    third = res.acquire()
    assert not third.triggered
    res.release()
    assert third.triggered


def test_resource_fifo_waiters(env):
    res = Resource(env, capacity=1)
    res.acquire()
    waiters = [res.acquire() for _ in range(3)]
    res.release()
    assert [w.triggered for w in waiters] == [True, False, False]
    res.release()
    assert [w.triggered for w in waiters] == [True, True, False]


def test_resource_try_acquire(env):
    res = Resource(env, capacity=1)
    assert res.try_acquire()
    assert not res.try_acquire()
    res.release()
    assert res.try_acquire()


def test_release_without_acquire_raises(env):
    res = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_capacity_validation(env):
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_handoff_keeps_in_use_constant(env):
    res = Resource(env, capacity=1)
    res.acquire()
    waiter = res.acquire()
    res.release()  # handed straight to the waiter
    assert waiter.triggered
    assert res.in_use == 1
    res.release()
    assert res.in_use == 0


# ---------------------------------------------------------------------- Store
def test_store_fifo_order(env):
    store = Store(env)
    for i in range(5):
        store.put(i)
    got = [store.get().value for _ in range(5)]
    assert got == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put(env):
    store = Store(env)
    getter = store.get()
    assert not getter.triggered
    store.put("item")
    assert getter.triggered
    assert getter.value == "item"


def test_store_capacity_blocks_put(env):
    store = Store(env, capacity=1)
    assert store.put("a").triggered
    blocked = store.put("b")
    assert not blocked.triggered
    assert store.get().value == "a"
    assert blocked.triggered
    assert store.get().value == "b"


def test_store_try_variants(env):
    store = Store(env, capacity=1)
    assert store.try_get() is None
    assert store.try_put("x")
    assert not store.try_put("y")
    assert store.try_get() == "x"


def test_store_direct_handoff_to_waiting_getter(env):
    store = Store(env, capacity=1)
    getter = store.get()
    store.put("direct")
    assert getter.value == "direct"
    assert len(store) == 0


# ----------------------------------------------------------------- FifoServer
def test_fifo_server_serializes(env):
    server = FifoServer(env, service_time=10)
    done = [server.serve(), server.serve(), server.serve()]
    times = []
    for ev in done:
        ev.subscribe(lambda e: times.append(env.now))
    env.run()
    assert times == [10, 20, 30]


def test_fifo_server_busy_accounting(env):
    server = FifoServer(env, service_time=10)
    server.serve()
    server.serve()
    env.run()
    assert server.busy_cycles == 20
    assert server.packets_served == 2
    assert server.utilization() == 1.0  # back-to-back packets, now == 20


def test_fifo_server_idle_gap_not_counted(env):
    server = FifoServer(env, service_time=5)
    server.serve()
    env.run()
    env.timeout(95)
    env.run()
    assert env.now == 100
    assert server.utilization() == pytest.approx(0.05)


def test_fifo_server_extra_delay(env):
    server = FifoServer(env, service_time=10)
    first = server.serve(extra_delay=7)
    times = []
    first.subscribe(lambda e: times.append(env.now))
    env.run()
    assert times == [17]
    # extra delay is propagation, not occupancy:
    assert server.busy_cycles == 10


def test_fifo_server_negative_service_time_rejected(env):
    with pytest.raises(SimulationError):
        FifoServer(env, service_time=-1)


@given(
    arrivals=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
    service=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=50, deadline=None)
def test_fifo_server_conservation_property(arrivals, service):
    """Property: completions are spaced >= service_time apart and total
    busy time equals packets x service_time."""
    env = Environment()
    server = FifoServer(env, service_time=service)
    completions = []
    for a in sorted(arrivals):
        env.timeout(a).subscribe(
            lambda _e: server.serve().subscribe(lambda _d: completions.append(env.now))
        )
    env.run()
    assert len(completions) == len(arrivals)
    assert server.busy_cycles == len(arrivals) * service
    for earlier, later in zip(completions, completions[1:]):
        assert later - earlier >= service
