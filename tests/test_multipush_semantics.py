"""Burst-semantics property battery for multi-push speculation.

Randomized producer/consumer programs under random (k, p_min, endpoint
line count) burst shapes must preserve every queue invariant the
single-push device guarantees:

* **per-producer FIFO** and **message conservation** — checked twice per
  run: live by :class:`~repro.verify.invariants.InvariantChecker` (which
  ``run_fuzz_case`` attaches) and post-hoc by the functional queue oracle
  diff;
* **cacheline conservation** — every fill is eventually popped or rolled
  back, never both (the checker's conservation + rollback rules);
* **specBuf claim/release balance** — at quiesce no burst bookkeeping
  survives: every claimed slot was confirmed or rolled back, every
  ``on_fly`` latch released, every rollback pen flushed.

Rollback interleavings are exercised both by the random programs (slow
consumers overflow their line rings, so follower claims miss and drain)
and by hand-picked regression specs with known-heavy rollback and
invalidation activity.  Cross-flavor agreement pins the burst device to
the canonical delivery streams of ``vl`` and single-push SPAMeR.

Follows the :mod:`tests.test_fuzz_semantics` idiom: the module skips
cleanly when Hypothesis is absent.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.eval.runner import multipush_setting, setting_by_name
from repro.spamer.multipush import MultiPushSpeculation
from repro.verify.fuzz import (
    FUZZ_CORES,
    HAVE_HYPOTHESIS,
    LinkSpec,
    ProgramSpec,
    run_fuzz_case,
    run_fuzz_differential,
)

if not HAVE_HYPOTHESIS:  # pragma: no cover - environment dependent
    pytest.skip("hypothesis is not installed", allow_module_level=True)

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.verify.fuzz import program_specs

BURST_PROFILE = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,  # fixed example sequence: deterministic in CI
    suppress_health_check=[HealthCheck.too_slow],
)


def burst_config(lines: int) -> SystemConfig:
    return SystemConfig(num_cores=FUZZ_CORES, lines_per_endpoint=lines)


def assert_burst_balance(system) -> None:
    """specBuf claim/release balance at quiesce.

    Every burst fully resolved (no claims, pens, outstanding dooms or
    in-flight invalidations), every ``on_fly`` latch released, and the
    counters satisfy the resolution identities: only follower claims roll
    back, and every follower claim ends confirmed or rolled back.
    """
    stats = system.aggregate_device_stats()
    for device in system.devices:
        policy = device.pipeline.speculation
        if not isinstance(policy, MultiPushSpeculation):
            continue
        assert policy.burst_snapshot() == {}, (
            f"unresolved bursts at quiesce: {policy.burst_snapshot()}"
        )
        assert device.specbuf.on_fly_count() == 0
    claims = stats.get("burst_claims")
    confirms = stats.get("burst_confirms")
    rollbacks = stats.get("spec_rollbacks")
    invalidations = stats.get("rollback_invalidations")
    assert rollbacks <= claims, "a burst head can never roll back"
    assert invalidations <= rollbacks
    assert confirms + rollbacks >= claims, (
        "a follower claim neither confirmed nor rolled back"
    )


# ------------------------------------------------------------------ properties
@given(
    spec=program_specs(),
    burst_k=st.integers(min_value=1, max_value=4),
    p_min=st.sampled_from([0.0, 0.5, 0.9]),
    lines=st.integers(min_value=2, max_value=6),
)
@BURST_PROFILE
def test_multipush_fuzz_holds_all_invariants(spec, burst_k, p_min, lines):
    """Checker + oracle + claim balance on random burst interleavings."""
    result = run_fuzz_case(
        spec, multipush_setting(burst_k, p_min), config=burst_config(lines)
    )
    assert result.ok, result.mismatches() or result.violations
    assert_burst_balance(result.system)


@given(spec=program_specs(), burst_k=st.integers(min_value=2, max_value=4))
@settings(max_examples=6, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
def test_multipush_agrees_with_every_other_flavor(spec, burst_k):
    """vl, single-push SPAMeR and the burst device deliver one stream."""
    mismatches = run_fuzz_differential(
        spec,
        [
            setting_by_name("vl"),
            setting_by_name("0delay"),
            setting_by_name("tuned"),
            multipush_setting(burst_k, 0.0),
        ],
        config=burst_config(4),
    )
    assert not mismatches, "\n".join(mismatches)


@given(spec=program_specs())
@settings(max_examples=6, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
def test_multipush_k1_matches_single_push_stream(spec):
    """k=1 is the degenerate case: the tuned stream, event for event."""
    mismatches = run_fuzz_differential(
        spec,
        [setting_by_name("tuned"), multipush_setting(1, 0.75)],
        config=burst_config(2),
    )
    assert not mismatches, "\n".join(mismatches)


# ------------------------------------------------------------- regressions
#: Hand-picked burst shapes with known semantics coverage (found by a
#: parameter scan): ROLLBACK_HEAVY drains hundreds of overshot claims
#: through the pen; INVALIDATION exercises the rare doomed-claim-landed
#: path where a rolled-back stash must be invalidated over the network.
ROLLBACK_HEAVY = ProgramSpec(
    links=(LinkSpec(2, 1, 16),), producer_compute=0, consumer_compute=400
)
INVALIDATION = ProgramSpec(
    links=(LinkSpec(2, 1, 16),), producer_compute=0, consumer_compute=0
)


@pytest.mark.parametrize("burst_k", [2, 4])
def test_rollback_heavy_burst_stays_clean(burst_k):
    result = run_fuzz_case(
        ROLLBACK_HEAVY, multipush_setting(burst_k, 0.0),
        config=burst_config(4),
    )
    assert result.ok, result.mismatches() or result.violations
    assert_burst_balance(result.system)
    stats = result.system.aggregate_device_stats()
    assert stats.get("spec_rollbacks") > 50, "spec no longer rollback-heavy"


def test_doomed_claim_invalidation_path_is_exercised():
    result = run_fuzz_case(
        INVALIDATION, multipush_setting(4, 0.0), config=burst_config(4)
    )
    assert result.ok, result.mismatches() or result.violations
    assert_burst_balance(result.system)
    stats = result.system.aggregate_device_stats()
    assert stats.get("rollback_invalidations") >= 1, (
        "spec no longer reaches the landed-then-doomed invalidation path"
    )


@pytest.mark.parametrize("p_min", [0.0, 0.75, 1.0])
def test_acceptance_gate_bounds_burst_width(p_min):
    """p_min=1.0 can only gate bursts off (EWMA<1 after any rollback)."""
    result = run_fuzz_case(
        ROLLBACK_HEAVY, multipush_setting(4, p_min), config=burst_config(4)
    )
    assert result.ok, result.mismatches() or result.violations
    assert_burst_balance(result.system)
