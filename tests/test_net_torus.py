"""Unit + system tests for the 2-D torus topology (repro.net.torus)."""

import pytest

from repro.config import SystemConfig
from repro.eval.runner import run_workload, setting_by_name
from repro.net.topology import build_topology, topology_names


def cfg(**overrides):
    defaults = dict(num_cores=16, bus_occupancy=3, bus_latency=36,
                    link_latency=12)
    defaults.update(overrides)
    return SystemConfig(topology="torus", **defaults)


def torus(env, **overrides):
    return build_topology("torus", env, cfg(**overrides))


# ----------------------------------------------------------------- registry
def test_torus_registered():
    assert "torus" in topology_names()


# ----------------------------------------------------------------- geometry
def test_4x4_link_count_and_names(env):
    topo = torus(env)
    assert (topo.rows, topo.cols) == (4, 4)
    links = topo.links()
    # 48 directed mesh links + 8 row wraps + 8 column wraps
    assert len(links) == 64
    names = [l.name for l in links]
    assert len(set(names)) == 64  # unique, deterministic enumeration
    assert "torus.we[0]" in names and "torus.ww[3]" in names
    assert "torus.ws[0]" in names and "torus.wn[3]" in names


def test_links_enumerate_deterministically(env):
    from repro.sim.kernel import Environment

    a = [l.name for l in torus(env).links()]
    b = [l.name for l in torus(Environment()).links()]
    assert a == b


def test_two_wide_dimension_gets_no_wrap_links(env):
    # 2x2: every wrap edge would duplicate an existing neighbor link.
    topo = torus(env, num_cores=4)
    assert (topo.rows, topo.cols) == (2, 2)
    names = [l.name for l in topo.links()]
    assert len(names) == 8
    assert not any(
        n.startswith(("torus.we", "torus.ww", "torus.ws", "torus.wn"))
        for n in names
    )
    # routing still works around the tiny grid
    assert topo.hops(0, 3) == 2


def test_mesh_dims_accepted_for_torus(env):
    topo = build_topology(
        "torus", env, SystemConfig(topology="torus", num_cores=8,
                                   mesh_dims=(2, 4)))
    assert (topo.rows, topo.cols) == (2, 4)
    # only the 4-wide dimension is wrapped
    names = [l.name for l in topo.links()]
    assert any(n.startswith("torus.we") for n in names)
    assert not any(n.startswith("torus.ws") for n in names)


# ------------------------------------------------------------------ routing
def test_wraparound_halves_corner_to_corner_distance(env):
    from repro.sim.kernel import Environment

    topo = torus(env)
    mesh = build_topology("mesh", Environment(),
                          cfg(num_cores=16).with_overrides(topology="mesh"))
    # (0,0) -> (3,3): mesh walks 3+3 hops, the torus wraps 1+1... times 1
    # ring step each way => 2 hops total.
    assert mesh.hops(0, 15) == 6
    assert topo.hops(0, 15) == 2
    assert len(topo.route(0, 15)) == topo.hops(0, 15)


def test_route_length_matches_hops_everywhere(env):
    topo = torus(env)
    for src in range(topo.num_nodes):
        for dst in range(topo.num_nodes):
            route = topo.route(src, dst)
            assert len(route) == topo.hops(src, dst)
            if src == dst:
                assert route == ()


def test_even_ring_tie_breaks_east(env):
    # column 0 -> column 2 on a 4-ring: both ways are 2 hops; the
    # deterministic tie-break walks east (positive direction).
    topo = torus(env)
    names = [l.name for l in topo.route(0, 2)]
    assert names == ["torus.e[0,0]", "torus.e[0,1]"]


def test_hops_symmetric_under_wraparound(env):
    topo = torus(env)
    for src, dst in [(0, 12), (1, 13), (0, 3), (5, 9)]:
        assert topo.hops(src, dst) == topo.hops(dst, src)


def test_srd_placement_matches_mesh(env):
    from repro.sim.kernel import Environment

    topo = torus(env)
    mesh = build_topology("mesh", Environment(),
                          cfg(num_cores=16).with_overrides(topology="mesh"))
    srds = max(1, topo.config.effective_srds)
    for i in range(srds):
        assert topo.srd_node(i) == mesh.srd_node(i)


# --------------------------------------------------------------- end-to-end
@pytest.mark.parametrize("setting", ["vl", "tuned"])
def test_workload_completes_verified_on_torus(setting):
    metrics = run_workload(
        "ping-pong", setting_by_name(setting), scale=0.1,
        config=SystemConfig(topology="torus"), verify=True,
    )
    assert metrics.messages_delivered == metrics.messages_produced > 0
    assert metrics.extra["net_links"] == 64
    assert 0.0 <= metrics.extra["net_utilization"] <= 1.0


def test_torus_shrinks_mean_and_worst_case_distance(env):
    """Wraparound never lengthens a route (per-pair hops <= mesh hops) and
    strictly shrinks the 4x4 diameter and mean distance.  Wall-clock can
    still wobble a few cycles either way — rerouting reshuffles link
    contention — so the structural claim is the invariant worth pinning."""
    from repro.sim.kernel import Environment

    topo = torus(env)
    mesh = build_topology("mesh", Environment(),
                          cfg(num_cores=16).with_overrides(topology="mesh"))
    pairs = [(s, d) for s in range(16) for d in range(16)]
    assert all(topo.hops(s, d) <= mesh.hops(s, d) for s, d in pairs)
    assert max(topo.hops(s, d) for s, d in pairs) == 4  # diameter, mesh: 6
    assert (sum(topo.hops(s, d) for s, d in pairs)
            < sum(mesh.hops(s, d) for s, d in pairs))
