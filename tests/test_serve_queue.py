"""Admission gate and scheduling policies: the queue's contracts.

Policies only ever reorder *queued* jobs — a dispatched job is never
preempted — and the admission bound rejects with the typed
:class:`~repro.errors.AdmissionError` rather than queueing unboundedly.
"""

import pickle

import pytest

from repro.errors import AdmissionError, ConfigError, JobNotFoundError
from repro.eval.parallel import RunRequest
from repro.eval.runner import setting_by_name
from repro.serve import (
    STARVATION_LIMIT,
    JobQueue,
    JobState,
    calibrated_estimates,
    estimate_cost,
    make_sched_policy,
    sched_policy_names,
)
from repro.serve.policy import ShortestFirstPolicy


def _request(workload="ping-pong", scale=0.05):
    return RunRequest.from_setting(
        workload, setting_by_name("tuned"), scale=scale
    )


# ---------------------------------------------------------------- admission
def test_admission_gate_rejects_typed_at_the_bound():
    queue = JobQueue(max_depth=2)
    queue.submit("a", _request())
    queue.submit("b", _request())
    with pytest.raises(AdmissionError) as excinfo:
        queue.submit("c", _request())
    assert excinfo.value.depth == 2
    assert excinfo.value.limit == 2
    assert queue.admitted == 2
    assert queue.rejected == 1
    # Dispatching frees depth: the gate is flow control, not a hard cap.
    assert queue.select_next().job_id == "a"
    queue.submit("c", _request())
    assert queue.depth == 2


def test_admission_error_pickles_with_its_fields():
    error = AdmissionError("full", depth=7, limit=8)
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, AdmissionError)
    assert (clone.depth, clone.limit) == (7, 8)
    assert "full" in str(clone)


def test_duplicate_job_id_is_a_config_error():
    queue = JobQueue()
    queue.submit("a", _request())
    with pytest.raises(ConfigError):
        queue.submit("a", _request())


def test_unknown_job_id_raises_job_not_found():
    with pytest.raises(JobNotFoundError):
        JobQueue().get("nope")


def test_bad_depth_and_unknown_policy_are_config_errors():
    with pytest.raises(ConfigError):
        JobQueue(max_depth=0)
    with pytest.raises(ConfigError):
        make_sched_policy("does-not-exist")


# ------------------------------------------------------------------ registry
def test_policy_registry_names():
    names = sched_policy_names()
    assert {"fifo", "priority", "shortest-first"} <= set(names)
    assert names == sorted(names)


# ---------------------------------------------------------------------- fifo
def test_fifo_preserves_submission_order():
    queue = JobQueue(policy="fifo", max_depth=16)
    # Priorities and estimates are deliberately adversarial: FIFO must
    # ignore both.
    for i, (priority, estimate) in enumerate(
        [(0, 9.0), (5, 1.0), (-3, 4.0), (2, 0.5)]
    ):
        queue.submit(f"job-{i}", _request(), priority=priority,
                     estimate=estimate)
    order = [queue.select_next().job_id for _ in range(4)]
    assert order == ["job-0", "job-1", "job-2", "job-3"]


# ------------------------------------------------------------------ priority
def test_priority_overtakes_queued_but_never_running():
    queue = JobQueue(policy="priority", max_depth=16)
    queue.submit("sweep-1", _request(), priority=0)
    queue.submit("sweep-2", _request(), priority=0)
    running = queue.select_next()
    assert running.job_id == "sweep-1"
    assert running.state is JobState.RUNNING
    # A late high-priority probe jumps every *queued* job...
    queue.submit("probe", _request(), priority=10)
    assert queue.select_next().job_id == "probe"
    # ...but the running job was untouched: still running, never re-queued.
    assert running.state is JobState.RUNNING
    assert queue.select_next().job_id == "sweep-2"


def test_priority_is_fifo_within_a_level():
    queue = JobQueue(policy="priority", max_depth=16)
    for name in ("a", "b", "c"):
        queue.submit(name, _request(), priority=3)
    assert [queue.select_next().job_id for _ in range(3)] == ["a", "b", "c"]


# ------------------------------------------------------------ shortest-first
def test_shortest_first_runs_cheap_jobs_first():
    queue = JobQueue(policy="shortest-first", max_depth=16)
    queue.submit("big", _request(), estimate=1000.0)
    queue.submit("small", _request(), estimate=1.0)
    queue.submit("medium", _request(), estimate=10.0)
    order = [queue.select_next().job_id for _ in range(3)]
    assert order == ["small", "medium", "big"]


def test_shortest_first_starvation_bound():
    limit = 3
    queue = JobQueue(policy=ShortestFirstPolicy(starvation_limit=limit),
                     max_depth=64)
    queue.submit("long", _request(), estimate=1000.0)
    # A steady stream of short jobs: without aging, "long" never runs.
    dispatched = []
    next_short = 0
    for round_no in range(limit + 1):
        queue.submit(f"short-{next_short}", _request(), estimate=1.0)
        next_short += 1
        dispatched.append(queue.select_next().job_id)
    # "long" was passed over exactly `limit` times, then forced through
    # even though a cheaper job was queued.
    assert dispatched[:limit] == [f"short-{i}" for i in range(limit)]
    assert dispatched[limit] == "long"
    assert queue.get("long").passed_over >= limit


def test_default_starvation_limit_is_pinned():
    assert STARVATION_LIMIT == 8
    assert ShortestFirstPolicy().starvation_limit == STARVATION_LIMIT
    with pytest.raises(ConfigError):
        ShortestFirstPolicy(starvation_limit=0)


# ----------------------------------------------------------------- estimates
def test_estimate_cost_ranks_by_size():
    small = estimate_cost(_request(scale=0.02))
    big = estimate_cost(_request(scale=0.5))
    assert 0 < small < big


def test_estimate_cost_prefers_calibration():
    class FakeLoadResult:
        calibration = [
            {"topology": "single-bus", "setting": "SPAMeR(tuned)",
             "requests": 100, "cycles": 4242, "service_rate": 0.02},
        ]

    table = calibrated_estimates(FakeLoadResult())
    assert table == {("single-bus", "SPAMeR(tuned)"): 4242.0}
    assert estimate_cost(_request(), calibration=table) == 4242.0
    # A cell the table does not cover falls back to the heuristic.
    other = RunRequest.from_setting(
        "ping-pong", setting_by_name("vl"), scale=0.05
    )
    assert estimate_cost(other, calibration=table) == estimate_cost(other)


def test_estimate_cost_handles_closed_only_workloads():
    # Dependency-driven workloads have no session quotas; the estimate
    # must still be a positive rank.
    closed = RunRequest.from_setting(
        "bitonic", setting_by_name("tuned"), scale=0.05
    )
    assert estimate_cost(closed) > 0
