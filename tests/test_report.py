"""Unit tests for the text-rendering helpers."""

from repro.eval.report import (
    ascii_bar,
    dict_table,
    format_pct,
    format_speedup,
    format_table,
    format_trace_rows,
)
from repro.sim.trace import Transaction


def test_format_table_alignment():
    out = format_table(["a", "long-header"], [["x", 1], ["yyyy", 22]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "long-header" in lines[1]
    # All data rows share the separator width.
    assert len(lines[2]) == len(lines[3]) or len(lines[3]) <= len(lines[2])
    assert "yyyy" in out and "22" in out


def test_format_helpers():
    assert format_pct(0.1234) == "12.3%"
    assert format_speedup(1.456) == "1.46x"


def test_ascii_bar_clamps():
    assert ascii_bar(0.0) == ""
    assert len(ascii_bar(3.0, scale=20, maximum=3.0)) == 20
    assert len(ascii_bar(99.0, scale=20, maximum=3.0)) == 20


def test_dict_table():
    out = dict_table("Config", {"Cores": "16x", "DRAM": "8 GiB"})
    assert "Config" in out and "Cores" in out and "8 GiB" in out


def test_format_trace_rows_classification():
    ondemand = Transaction(0, 1, data_arrive=5, request_arrive=50,
                           line_vacate=10, line_fill=80, first_use=90)
    spec = Transaction(1, 1, data_arrive=100, line_vacate=95,
                       line_fill=130, first_use=140)
    out = format_trace_rows([ondemand, spec], 0, 1000)
    assert "req-bound" in out
    assert "speculative" in out
    assert out.count("\n") == 2  # header + 2 rows


def test_format_trace_rows_window_filter():
    txn = Transaction(0, 1, data_arrive=5, line_vacate=0, line_fill=80,
                      first_use=90)
    out = format_trace_rows([txn], 100, 200)
    assert out.count("\n") == 0  # header only


def test_format_accuracy_table_accepts_objects_and_dicts():
    from repro.eval.report import format_accuracy_table
    from repro.obs.accuracy import SpeculationAccuracy

    obj = SpeculationAccuracy("ping-pong", "tuned", 10, 8, 10, 128)
    out = format_accuracy_table([obj, obj.as_dict()])
    lines = out.splitlines()
    assert lines[0] == "speculation accuracy"
    assert out.count("ping-pong") == 2
    assert "80.0%" in out and "128" in out


def test_format_stage_table_orders_edges():
    from repro.eval.report import format_stage_table

    out = format_stage_table(
        "stages",
        {
            "pushed->mapped": {"count": 2.0, "mean": 5.5, "p50": 5.0,
                               "p90": 6.0, "p99": 6.0},
            "created->pushed": {"count": 2.0, "mean": 1.0, "p50": 1.0,
                                "p90": 1.0, "p99": 1.0},
        },
    )
    lines = out.splitlines()
    assert lines[0] == "stages"
    assert lines.index(
        next(l for l in lines if "created->pushed" in l)
    ) < lines.index(next(l for l in lines if "pushed->mapped" in l))
    assert "5.5" in out
