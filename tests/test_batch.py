"""Tests for the batch experiment runner and the CLI surface around it."""

import json

import pytest

from repro.errors import ConfigError
from repro.eval.batch import parse_spec, run_batch, run_batch_file, summarize_report


MINI_SPEC = {
    "name": "mini",
    "workloads": ["ping-pong", "incast"],
    "settings": ["vl", "0delay"],
    "seeds": [1],
    "scale": 0.06,
}


def test_parse_spec_fills_defaults():
    norm = parse_spec({})
    assert norm["name"] == "unnamed-study"
    assert len(norm["workloads"]) == 8
    assert norm["settings"] == ["vl", "0delay", "adapt", "tuned"]
    assert norm["seeds"] == [0xC0FFEE]
    assert norm["scale"] == 1.0


@pytest.mark.parametrize(
    "bad",
    [
        {"workloads": ["nope"]},
        {"settings": ["warp-drive"]},
        {"seeds": []},
        {"scale": 0},
        {"config": {"bus_latency": -1}},
        {"config": {"no_such_field": 1}},
    ],
)
def test_parse_spec_rejects_bad_input(bad):
    with pytest.raises((ConfigError, TypeError)):
        parse_spec(bad)


def test_run_batch_produces_full_grid():
    report = run_batch(MINI_SPEC)
    assert report["baseline"] == "vl"
    assert set(report["results"]) == {"ping-pong", "incast"}
    for per_setting in report["results"].values():
        assert set(per_setting) == {"vl", "0delay"}
        for per_seed in per_setting.values():
            assert set(per_seed) == {"1"}
            metrics = per_seed["1"]
            assert metrics["exec_cycles"] > 0
            assert "failure_rate" in metrics


def test_run_batch_speedups_relative_to_first_setting():
    report = run_batch(MINI_SPEC)
    assert report["speedups"]["incast"]["vl"]["1"] == 1.0
    assert report["speedups"]["incast"]["0delay"]["1"] > 1.0


def test_run_batch_applies_config_overrides():
    slow = run_batch({**MINI_SPEC, "workloads": ["incast"],
                      "config": {"pop_fast_path_cost": 150}})
    fast = run_batch({**MINI_SPEC, "workloads": ["incast"]})
    assert (
        slow["results"]["incast"]["vl"]["1"]["exec_cycles"]
        > fast["results"]["incast"]["vl"]["1"]["exec_cycles"]
    )


def test_report_is_json_serializable():
    report = run_batch(MINI_SPEC)
    json.dumps(report)  # must not raise


def test_run_batch_file_roundtrip(tmp_path):
    spec_path = tmp_path / "spec.json"
    report_path = tmp_path / "report.json"
    spec_path.write_text(json.dumps(MINI_SPEC))
    report = run_batch_file(str(spec_path), report_path=str(report_path))
    on_disk = json.loads(report_path.read_text())
    assert on_disk["name"] == report["name"] == "mini"


def test_summarize_report_rows():
    report = run_batch(MINI_SPEC)
    rows = summarize_report(report)
    assert ["ping-pong", "vl", "1.00x"] in rows
    assert len(rows) == 4


def test_cli_batch(tmp_path, capsys):
    from repro.cli import main

    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(MINI_SPEC))
    assert main(["batch", str(spec_path)]) == 0
    out = capsys.readouterr().out
    assert "mini" in out and "incast" in out
