"""Unit and property tests for the delay-prediction algorithms (Listing 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.mem.address import Segment
from repro.spamer.delay import (
    AdaptiveDelay,
    FixedDelay,
    MAX_DELAY,
    NeverPush,
    TunedDelay,
    TunedParams,
    ZeroDelay,
    algorithm_by_name,
)
from repro.spamer.specbuf import SpecEntry
from repro.vlink.endpoint import ConsumerEndpoint


@pytest.fixture
def entry(env):
    ep = ConsumerEndpoint(env, 0, 1, Segment(0x1000, 4096), 0, 4, spec_enabled=True)
    return SpecEntry(0, ep)


# ------------------------------------------------------------------- ZeroDelay
def test_zero_delay_pushes_immediately(entry):
    algo = ZeroDelay()
    assert algo.send_tick(entry, 100) == 100
    algo.on_response(entry, hit=True, now=150)
    assert entry.nfills == 1 and entry.last == 150
    algo.on_response(entry, hit=False, now=200)
    assert entry.failed


# ---------------------------------------------------------------- AdaptiveDelay
def test_adaptive_halves_on_success(entry):
    algo = AdaptiveDelay(initial_delay=64)
    assert algo.send_tick(entry, 0) == 64
    algo.on_response(entry, hit=True, now=100)
    assert entry.delay == 32
    algo.on_response(entry, hit=True, now=200)
    assert entry.delay == 16


def test_adaptive_doubles_on_failure(entry):
    algo = AdaptiveDelay(initial_delay=64)
    algo.send_tick(entry, 0)
    algo.on_response(entry, hit=False, now=50)
    assert entry.delay == 128
    algo.on_response(entry, hit=False, now=100)
    assert entry.delay == 256


def test_adaptive_delay_is_capped(entry):
    algo = AdaptiveDelay(initial_delay=64, max_delay=256)
    algo.send_tick(entry, 0)
    for _ in range(10):
        algo.on_response(entry, hit=False, now=0)
    assert entry.delay == 256


def test_adaptive_recovers_from_zero(entry):
    algo = AdaptiveDelay(initial_delay=4)
    algo.send_tick(entry, 0)
    algo.on_response(entry, hit=True, now=1)
    algo.on_response(entry, hit=True, now=2)
    algo.on_response(entry, hit=True, now=3)
    assert entry.delay == 0
    algo.on_response(entry, hit=False, now=4)
    assert entry.delay == 1  # doubling from zero still makes progress


def test_adaptive_validation():
    with pytest.raises(ConfigError):
        AdaptiveDelay(initial_delay=-1)


# ------------------------------------------------------------------- TunedDelay
def test_tuned_params_defaults_match_paper():
    p = TunedParams()
    assert (p.zeta, p.tau, p.delta, p.alpha, p.beta) == (256, 96, 64, 1, 2)
    assert p.label() == "z256-t96-d64-a1-b2"


def test_tuned_params_validation():
    with pytest.raises(ConfigError):
        TunedParams(delta=0)
    with pytest.raises(ConfigError):
        TunedParams(beta=0)
    with pytest.raises(ConfigError):
        TunedParams(tau=-1)


def test_tuned_init_phase(entry):
    """During the first beta fills the delay is 0 (or delta after a miss)."""
    algo = TunedDelay()
    assert algo.send_tick(entry, 1000) == 1000
    entry.failed = True
    assert algo.send_tick(entry, 1000) == 1000 + 64  # + delta


def test_tuned_hit_update_sets_reference_window(entry):
    """Listing 1: delay = interval - tau, ddl = interval + zeta."""
    algo = TunedDelay()
    entry.last = 1000
    algo.on_response(entry, hit=True, now=1500)  # interval = 500
    assert entry.delay == 500 - 96
    assert entry.ddl == 500 + 256
    assert entry.nfills == 1
    assert entry.last == 1500
    assert entry.failed is False


def test_tuned_hit_clamps_negative_delay(entry):
    algo = TunedDelay()
    entry.last = 1000
    algo.on_response(entry, hit=True, now=1050)  # interval 50 < tau 96
    assert entry.delay == 0


def test_tuned_miss_steps_additively_before_deadline(entry):
    algo = TunedDelay()
    entry.delay, entry.ddl = 100, 500
    algo.on_response(entry, hit=False, now=0)
    assert entry.delay == 164  # +delta
    assert entry.failed


def test_tuned_miss_escalates_past_deadline(entry):
    algo = TunedDelay()
    entry.delay, entry.ddl = 600, 500
    algo.on_response(entry, hit=False, now=0)
    assert entry.delay == 1200  # << alpha (=1)


def test_tuned_planned_delay_branch(entry):
    """elapse < delay -> push at last + delay."""
    algo = TunedDelay()
    entry.nfills = 5
    entry.last, entry.delay, entry.failed = 1000, 800, False
    tick = algo.send_tick(entry, 1400)  # elapse 400 < 800 (and >= halved)
    assert tick in (1000 + 800, 1000 + (800 >> 1))  # halved branch possible


def test_tuned_immediate_when_late_and_not_failed(entry):
    algo = TunedDelay()
    entry.nfills = 5
    entry.last, entry.delay, entry.failed = 1000, 100, False
    assert algo.send_tick(entry, 2000) == 2000  # elapse 1000 >= delay


def test_tuned_step_when_failed_before_deadline(entry):
    algo = TunedDelay()
    entry.nfills = 5
    entry.last, entry.delay, entry.failed, entry.ddl = 1000, 100, True, 2000
    assert algo.send_tick(entry, 1500) == 1500 + 64  # + delta


def test_tuned_fallback_past_deadline(entry):
    algo = TunedDelay()
    entry.nfills = 5
    entry.last, entry.delay, entry.failed, entry.ddl = 1000, 100, True, 200
    assert algo.send_tick(entry, 5000) == 5000 + 100


@given(
    last=st.integers(min_value=0, max_value=10_000),
    delay=st.integers(min_value=0, max_value=5_000),
    ddl=st.integers(min_value=0, max_value=10_000),
    nfills=st.integers(min_value=0, max_value=10),
    failed=st.booleans(),
    gap=st.integers(min_value=0, max_value=20_000),
)
@settings(max_examples=200, deadline=None)
def test_tuned_send_tick_never_in_the_past(last, delay, ddl, nfills, failed, gap):
    """Property: the scheduled push tick is always >= now (liveness)."""
    from repro.sim.kernel import Environment
    ep = ConsumerEndpoint(Environment(), 0, 1, Segment(0x1000, 4096), 0, 4, spec_enabled=True)
    entry = SpecEntry(0, ep)
    entry.last, entry.delay, entry.ddl = last, delay, ddl
    entry.nfills, entry.failed = nfills, failed
    now = last + gap
    tick = TunedDelay().send_tick(entry, now)
    assert tick is not None
    assert tick >= min(now, last + delay)
    assert tick <= now + max(delay, MAX_DELAY) + 64


@given(
    responses=st.lists(st.booleans(), min_size=1, max_size=100),
)
@settings(max_examples=100, deadline=None)
def test_tuned_delay_stays_bounded(responses):
    """Property: any hit/miss history keeps delay within [0, MAX_DELAY]."""
    from repro.sim.kernel import Environment
    ep = ConsumerEndpoint(Environment(), 0, 1, Segment(0x1000, 4096), 0, 4, spec_enabled=True)
    entry = SpecEntry(0, ep)
    algo = TunedDelay()
    now = 0
    for hit in responses:
        now += 50
        algo.on_response(entry, hit, now)
        assert 0 <= entry.delay <= MAX_DELAY


# ---------------------------------------------------------------- controls
def test_fixed_delay(entry):
    algo = FixedDelay(500)
    assert algo.send_tick(entry, 100) == 600
    with pytest.raises(ConfigError):
        FixedDelay(-1)


def test_never_push(entry):
    assert NeverPush().send_tick(entry, 0) is None


def test_algorithm_factory():
    assert isinstance(algorithm_by_name("0delay"), ZeroDelay)
    assert isinstance(algorithm_by_name("adapt"), AdaptiveDelay)
    assert isinstance(algorithm_by_name("tuned"), TunedDelay)
    assert isinstance(algorithm_by_name("fixed", delay=10), FixedDelay)
    assert isinstance(algorithm_by_name("never"), NeverPush)
    with pytest.raises(ConfigError):
        algorithm_by_name("nonsense")
