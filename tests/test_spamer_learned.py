"""Tests for the extended delay-prediction families (spamer/learned.py)."""

import pytest

from repro.errors import ConfigError
from repro.mem.address import Segment
from repro.spamer.delay import algorithm_by_name
from repro.spamer.learned import HistoryDelay, PerceptronDelay
from repro.spamer.specbuf import SpecEntry
from repro.vlink.endpoint import ConsumerEndpoint


@pytest.fixture
def entry(env):
    ep = ConsumerEndpoint(env, 0, 1, Segment(0x1000, 4096), 0, 4, spec_enabled=True)
    return SpecEntry(0, ep)


# ----------------------------------------------------------------- HistoryDelay
def test_history_validation():
    with pytest.raises(ConfigError):
        HistoryDelay(smoothing=0.0)
    with pytest.raises(ConfigError):
        HistoryDelay(smoothing=1.5)
    with pytest.raises(ConfigError):
        HistoryDelay(margin=1.0)
    with pytest.raises(ConfigError):
        HistoryDelay(margin=-0.1)
    with pytest.raises(ConfigError):
        HistoryDelay(backoff_step=0)


def test_history_pushes_immediately_without_history(entry):
    algo = HistoryDelay()
    assert algo.send_tick(entry, 123) == 123


def test_history_first_hit_records_no_interval(entry):
    """The first success has no predecessor, so no interval is trained."""
    algo = HistoryDelay(smoothing=0.5)
    algo.on_response(entry, hit=True, now=100)
    s = algo._entry_state(entry)
    assert s.samples == 1 and s.last_success == 100
    assert s.ewma_interval == 0.0
    assert entry.nfills == 1 and entry.last == 100 and entry.failed is False


def test_history_ewma_and_margin(entry):
    """delay = ewma * (1 - margin) measured from the last success."""
    algo = HistoryDelay(smoothing=0.5, margin=0.25)
    algo.on_response(entry, hit=True, now=100)
    algo.on_response(entry, hit=True, now=300)  # interval 200 -> ewma 100
    assert algo._entry_state(entry).ewma_interval == pytest.approx(100.0)
    # planned = int(100 * 0.75) = 75, anchored at last success (t=300)
    assert algo.send_tick(entry, 310) == 375
    # already past the predicted point: push now
    assert algo.send_tick(entry, 500) == 500


def test_history_failures_back_off_without_corrupting_ewma(entry):
    algo = HistoryDelay(smoothing=0.5, margin=0.25, backoff_step=48)
    algo.on_response(entry, hit=True, now=100)
    algo.on_response(entry, hit=True, now=300)
    before = algo._entry_state(entry).ewma_interval
    algo.on_response(entry, hit=False, now=350)
    algo.on_response(entry, hit=False, now=400)
    s = algo._entry_state(entry)
    assert s.ewma_interval == before  # failures never train the EWMA
    assert s.consecutive_failures == 2
    assert entry.failed
    # planned = 75 + 2*48 = 171 from last success at 300
    assert algo.send_tick(entry, 310) == 300 + 171
    # a hit clears the backoff
    algo.on_response(entry, hit=True, now=500)
    assert algo._entry_state(entry).consecutive_failures == 0


def test_history_backoff_applies_even_before_first_sample(entry):
    algo = HistoryDelay(backoff_step=48)
    algo.on_response(entry, hit=False, now=10)
    assert algo.send_tick(entry, 20) == 20 + 48


def test_history_respects_max_delay(entry):
    algo = HistoryDelay(smoothing=1.0, margin=0.0, max_delay=50)
    algo.on_response(entry, hit=True, now=0)
    algo.on_response(entry, hit=True, now=1000)  # ewma 1000, capped to 50
    assert algo.send_tick(entry, 1001) == 1050


# -------------------------------------------------------------- PerceptronDelay
def test_perceptron_validation():
    with pytest.raises(ConfigError):
        PerceptronDelay(learning_rate=0.0)
    with pytest.raises(ConfigError):
        PerceptronDelay(learning_rate=-1.0)


def test_perceptron_starts_aggressive(entry):
    """Zero weights activate at the threshold: push now, and always push
    now while untrained (samples == 0)."""
    algo = PerceptronDelay()
    assert algo.send_tick(entry, 100) == 100
    assert algo._entry_state(entry).last_aggressive


def test_perceptron_trains_only_on_wrong_decisions(entry):
    algo = PerceptronDelay(learning_rate=1.0)
    algo.send_tick(entry, 0)
    # Aggressive push that hit: decision was right, no update.
    algo.on_response(entry, hit=True, now=10)
    s = algo._entry_state(entry)
    assert s.bias == 0.0 and s.weights == [0.0] * 4
    assert s.samples == 1 and s.last_success == 10
    # Aggressive push that missed: move toward "don't push now".
    algo.send_tick(entry, 20)
    algo.on_response(entry, hit=False, now=30)
    assert s.bias == -1.0
    assert s.weights[0] == -1.0  # feature 0 (last push hit) was active
    assert s.consecutive_failures == 1 and entry.failed


def test_perceptron_untrained_entries_push_now_even_if_negative(entry):
    """samples == 0 overrides a negative activation (must learn somehow)."""
    algo = PerceptronDelay(learning_rate=1.0)
    algo.send_tick(entry, 0)
    algo.on_response(entry, hit=False, now=10)  # bias now -1
    assert algo.send_tick(entry, 20) == 20


def test_perceptron_conservative_waits_out_the_interval(entry):
    algo = PerceptronDelay()
    s = algo._entry_state(entry)
    s.samples, s.ewma_interval, s.last_success, s.bias = 4, 100.0, 200, -10.0
    entry.failed = False
    assert algo.send_tick(entry, 210) == 300  # last_success + ewma
    assert not s.last_aggressive
    # Conservative wait followed by a hit is a wrong "wait": train toward
    # aggression (bias moves up by learning_rate).
    algo.on_response(entry, hit=True, now=300)
    assert s.bias == -10.0 + algo.learning_rate


def test_perceptron_conservative_respects_max_delay(entry):
    algo = PerceptronDelay(max_delay=50)
    s = algo._entry_state(entry)
    s.samples, s.ewma_interval, s.last_success, s.bias = 4, 1000.0, 200, -10.0
    entry.failed = False
    assert algo.send_tick(entry, 210) == 250  # 200 + capped 50


def test_perceptron_hit_updates_interval_estimate(entry):
    algo = PerceptronDelay()
    algo.send_tick(entry, 0)
    algo.on_response(entry, hit=True, now=100)
    algo.send_tick(entry, 150)
    algo.on_response(entry, hit=True, now=300)  # interval 200
    s = algo._entry_state(entry)
    assert s.ewma_interval == pytest.approx(0.25 * 200)
    assert s.samples == 2
    assert entry.nfills == 2 and entry.last == 300


def test_learned_algorithms_are_registered():
    assert isinstance(algorithm_by_name("history"), HistoryDelay)
    assert isinstance(algorithm_by_name("perceptron"), PerceptronDelay)
