"""Figure 7 — message-queue transaction trace of incast.

Traces incast configured with a single SQI, a single consumer cacheline and
a single producer thread; prints the five event rows per transaction and
the paper's analysis: on-demand transactions whose fill was *hindered by
the request arrival* (dark lines in the paper) and the saving a speculative
push could have realised.
"""

from _shared import BENCH_SCALE, BENCH_SEED

from repro.eval import standard_settings, trace_experiment
from repro.eval.report import format_trace_rows


def test_fig7_trace_vl(benchmark):
    result = benchmark.pedantic(
        lambda: trace_experiment(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    txns = result.transactions
    mid = txns[len(txns) // 2].line_fill or 0
    print("\nFigure 7 (VL baseline, zoom window around t=%d):" % mid)
    print(format_trace_rows(txns, mid - 2500, mid + 2500))
    print(
        f"\ntransactions={len(txns)} request-bound={result.request_bound_count} "
        f"({result.request_bound_count / len(txns):.0%}) "
        f"total potential speculative saving={result.total_potential_saving} cycles"
    )
    # The paper's observation: most on-demand fills wait on the request.
    assert result.request_bound_count > 0.5 * len(txns)
    assert result.speculative_count == 0


def test_fig7_trace_spamer(benchmark):
    spamer = standard_settings()[1]  # 0delay
    result = benchmark.pedantic(
        lambda: trace_experiment(setting=spamer, scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    txns = result.transactions
    print(
        f"\nFigure 7 (SPAMeR 0delay): transactions={len(txns)} "
        f"speculative={result.speculative_count} (red dashed in the paper)"
    )
    assert result.speculative_count == len(txns)
    assert result.total_potential_saving == 0  # nothing left on the table
