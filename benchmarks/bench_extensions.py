"""Extensions beyond the paper: learned delay algorithms, multi-router
scaling, and the per-benchmark parameter search (the paper's future work).
"""

from _shared import BENCH_SCALE, BENCH_SEED

from repro.config import SystemConfig
from repro.eval import Setting, run_workload, standard_settings
from repro.eval.autotune import autotune
from repro.eval.report import format_speedup, format_table
from repro.spamer.learned import HistoryDelay, PerceptronDelay


def test_learned_algorithms(benchmark):
    """History-based and perceptron-style predictors (Section 3.5's design
    space beyond the three evaluated points)."""

    def sweep():
        out = {}
        vl = standard_settings()[0]
        for name in ("incast", "FIR", "firewall"):
            base = run_workload(name, vl, scale=BENCH_SCALE, seed=BENCH_SEED)
            row = {}
            for label, factory in (
                ("history", HistoryDelay),
                ("perceptron", PerceptronDelay),
            ):
                setting = Setting(f"SPAMeR({label})", "spamer", factory)
                m = run_workload(name, setting, scale=BENCH_SCALE, seed=BENCH_SEED)
                row[label] = (m.speedup_over(base), m.failure_rate)
            out[name] = row
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, per_algo in result.items():
        for label, (speedup, fail) in per_algo.items():
            rows.append([name, label, format_speedup(speedup), f"{fail:.1%}"])
    print("\n" + format_table(["benchmark", "algorithm", "speedup", "failures"],
                              rows, title="Extension: learned delay algorithms"))
    # Perceptron competes with the evaluated algorithms on every benchmark;
    # the EWMA history predictor smears FIR's bimodal intervals and loses
    # there — the "learns the slow period" failure mode made concrete.
    assert result["incast"]["perceptron"][0] > 1.15
    assert result["FIR"]["perceptron"][0] > 1.5
    assert result["FIR"]["history"][0] < result["FIR"]["perceptron"][0]


def test_multirouter_scaling(benchmark):
    """More routing devices relieve buffer pressure when entries are scarce
    (the paper leaves multi-router topologies to future work)."""

    def sweep():
        setting = standard_settings()[1]  # 0delay
        out = {}
        for routers in (1, 2, 4):
            cfg = SystemConfig(num_routers=routers, prodbuf_entries=8)
            m = run_workload("FIR", setting, scale=BENCH_SCALE, config=cfg,
                             seed=BENCH_SEED)
            out[routers] = m.exec_cycles
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[k, v] for k, v in result.items()]
    print("\n" + format_table(["routers", "FIR exec cycles (prodBuf=8 each)"],
                              rows, title="Extension: multi-router scaling"))
    assert result[4] <= result[1]


def test_autotune_future_work(benchmark):
    """Section 3.5 future work: per-benchmark parameter search."""

    def search():
        return {
            name: autotune(name, scale=BENCH_SCALE * 0.6, seed=BENCH_SEED,
                           max_evaluations=15)
            for name in ("FIR", "incast")
        }

    results = benchmark.pedantic(search, rounds=1, iterations=1)
    rows = [
        [name, r.best_params.label(), f"{r.best_score:.3f}",
         f"{r.paper_score:.3f}", format_speedup(r.improvement_over_paper),
         r.evaluations]
        for name, r in results.items()
    ]
    print("\n" + format_table(
        ["benchmark", "best params", "best score", "paper score",
         "improvement", "sims"],
        rows, title="Extension: per-benchmark parameter search"))
    for r in results.values():
        # The search never regresses below the paper's fixed set, and the
        # paper's FIR-tuned choice is already near-optimal on FIR.
        assert r.best_score <= r.paper_score + 1e-9
    assert results["FIR"].improvement_over_paper < 1.2
