"""Section 4.5 — SRD area and power estimation.

Reproduces the arithmetic of the paper's RTL-synthesis-derived estimates:
SRD buffers 0.156 mm², total 0.170 mm² (≤15 % over VLRD, <1 % of a 16-core
SoC); power ≤47.75 mW worst case (~0.23 % of a ~21 W SoC), with measured
push-frequency ratios from the actual simulation feeding the model.
"""

from _shared import BENCH_SCALE, BENCH_SEED, comparison_grid

from repro.eval import (
    estimate_power,
    estimate_srd_area,
    estimate_vlrd_area,
    paper_power_bounds,
)
from repro.eval.report import format_table


def test_area_estimate(benchmark):
    est = benchmark(estimate_srd_area)
    vlrd = estimate_vlrd_area()
    rows = [[k, f"{v:.4f}"] for k, v in est.buffers_mm2.items()]
    rows.append(["control/other", f"{est.control_mm2:.4f}"])
    rows.append(["TOTAL (SRD)", f"{est.total_mm2:.4f}"])
    rows.append(["TOTAL (VLRD)", f"{vlrd.total_mm2:.4f}"])
    print("\n" + format_table(["structure", "mm^2 @16nm"], rows,
                              title="Section 4.5: area estimate"))
    print(f"SRD / VLRD = {est.total_mm2 / vlrd.total_mm2:.3f} (paper: within 1.15)")
    print(f"SRD share of 16-core SoC = {est.share_of_soc(16):.2%} (paper: <1%)")
    assert abs(est.buffer_total_mm2 - 0.156) < 1e-9
    assert abs(est.total_mm2 - 0.170) < 1e-9
    assert est.total_mm2 / vlrd.total_mm2 < 1.15
    assert est.share_of_soc(16) < 0.01


def test_power_estimate_from_measured_push_frequency(benchmark):
    grid = benchmark.pedantic(comparison_grid, rounds=1, iterations=1)
    vl, zero, adapt, tuned = grid.settings
    rows = []
    worst = {}
    for label in (adapt, tuned):
        ratios = []
        for w, per_setting in grid.metrics.items():
            base = per_setting[vl].push_frequency
            ratios.append(per_setting[label].push_frequency / base if base else 1.0)
        worst[label] = max(ratios)
        est = estimate_power(worst[label])
        rows.append([label, f"{worst[label]:.2f}x", f"{est.total_mw:.2f} mW",
                     f"{est.share_of_soc():.3%}"])
    print("\n" + format_table(
        ["setting", "push-freq vs VL (worst)", "power", "SoC share"],
        rows, title="Section 4.5: power from measured push frequency"))

    bounds = paper_power_bounds()
    print(f"paper bounds: adapt <= {bounds['SPAMeR(adapt)'].total_mw:.2f} mW, "
          f"tuned <= {bounds['SPAMeR(tuned)'].total_mw:.2f} mW (47.75 mW quoted)")
    # Measured push-frequency ratios stay within the paper's worst cases.
    assert worst[adapt] < 6.0
    assert worst[tuned] < 6.0
    assert bounds["SPAMeR(tuned)"].total_mw <= 47.76
    assert bounds["SPAMeR(tuned)"].share_of_soc() < 0.0024
