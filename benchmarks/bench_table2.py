"""Table 2 — the benchmark list with (M:N)×k queue topologies."""

from repro.eval import render_table2, table2


def test_table2(benchmark):
    rows = benchmark(table2)
    print("\n" + render_table2())
    assert len(rows) == 8
    by_name = {name: topo for name, _desc, topo in rows}
    assert by_name["ping-pong"] == "(1:1)x2"
    assert by_name["halo"] == "(1:1)x48"
    assert by_name["incast"] == "(4:1)x1"
    assert by_name["pipeline"] == "(1:4)x1+(4:4)x1+(4:1)x1+(1:1)x1"
    assert by_name["firewall"] == "(1:1)x3+(2:1)x1"
    assert by_name["FIR"] == "(1:1)x9"
