"""Table 1 — the simulated hardware configuration.

Regenerates the paper's Table 1 rows from :class:`SystemConfig` defaults.
"""

from repro.eval import render_table1, table1


def test_table1(benchmark):
    rows = benchmark(table1)
    print("\n" + render_table1())
    assert rows["Cores"] == "16xAArch64 OoO CPU @ 2 GHz"
    assert rows["DRAM"] == "8 GiB 2400 MHz DDR4"
    assert rows["SRD"].startswith("64 entries")
