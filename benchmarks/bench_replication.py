"""Statistical robustness: the Figure 8 headline across seeds.

gem5 papers report single runs; a simulation reproduction can replicate.
This bench re-runs the speedup grid over several seeds and asserts the
geometric means hold with tight 95% confidence intervals — the reproduced
shapes are not one-seed accidents.
"""

from _shared import BENCH_SCALE

from repro.eval import replicated_comparison
from repro.eval.report import format_table

SEEDS = [0xC0FFEE, 1, 2]


def test_fig8_geomeans_across_seeds(benchmark):
    result = benchmark.pedantic(
        lambda: replicated_comparison(seeds=SEEDS, scale=BENCH_SCALE * 0.6),
        rounds=1,
        iterations=1,
    )
    rows = [[label, str(stat)] for label, stat in result.geomeans.items()]
    print("\n" + format_table(
        ["setting", "geomean speedup (95% CI)"],
        rows, title=f"Figure 8 geomeans over seeds {SEEDS}"))

    vl, zero, adapt, tuned = result.settings
    assert result.geomeans[vl].mean == 1.0
    for label in (zero, adapt, tuned):
        stat = result.geomeans[label]
        assert stat.low > 1.1, (label, str(stat))
        assert stat.ci95_half_width < 0.15, (label, str(stat))

    rows = []
    for w, per_setting in result.speedups.items():
        rows.append([w] + [str(per_setting[s]) for s in result.settings[1:]])
    print("\n" + format_table(
        ["benchmark"] + result.settings[1:], rows,
        title="per-benchmark speedups (95% CI)"))
