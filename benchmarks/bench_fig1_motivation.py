"""Figure 1 — the motivation: Lc (coherence queue) > Lv (VL) > Ls (SPAMeR).

Runs the same ping-pong exchange over (a) the MOESI software queue,
(b) Virtual-Link and (c) SPAMeR, and reports per-message latency and
network packet counts.
"""

from _shared import BENCH_SEED  # noqa: F401 (documented reproducibility knob)

from repro.eval.report import format_table
from repro.swqueue import motivation_experiment


def test_fig1_motivation(benchmark):
    results = benchmark.pedantic(
        lambda: motivation_experiment(messages=300), rounds=1, iterations=1
    )
    rows = [
        [r.mechanism, f"{r.cycles_per_message:.1f}", r.coherence_packets]
        for r in results.values()
    ]
    print("\n" + format_table(
        ["mechanism", "cycles/message", "network packets"],
        rows, title="Figure 1: cross-core message latency by mechanism"))

    sw = results["software"].cycles_per_message
    vl = results["virtual-link"].cycles_per_message
    sp = results["spamer"].cycles_per_message
    assert sw > vl >= sp * 0.98          # Lc > Lv >= Ls
    assert results["spamer"].coherence_packets < results["virtual-link"].coherence_packets
    assert results["software"].coherence_packets > results["virtual-link"].coherence_packets
