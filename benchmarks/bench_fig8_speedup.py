"""Figure 8 — speedup of SPAMeR over Virtual-Link per benchmark.

Paper: 0-delay / adaptive / tuned achieve 1.45× / 1.25× / 1.33× geometric
mean; five benchmarks exceed 1.24× under 0-delay, FIR peaks at 2.59×, and
ping-pong/sweep see almost nothing.  The reproduction asserts those shapes
(not the absolute numbers — the substrate is a transaction-level simulator,
not the authors' gem5 configuration).
"""

from _shared import comparison_grid

from repro.eval import render_fig8


def test_fig8_speedups(benchmark):
    grid = benchmark.pedantic(comparison_grid, rounds=1, iterations=1)
    print("\n" + render_fig8(grid))

    sp = grid.speedups()
    gm = grid.geomean_speedups()
    vl, zero, adapt, tuned = grid.settings

    # Shape: FIR is the biggest winner; ping-pong and sweep gain ~nothing.
    assert sp["FIR"][zero] == max(sp[w][zero] for w in sp)
    assert sp["FIR"][zero] > 1.5
    assert sp["ping-pong"][zero] < 1.15
    assert sp["sweep"][zero] < 1.2

    # Several benchmarks clear the paper's 1.24x bar under 0-delay.
    assert sum(1 for w in sp if sp[w][zero] > 1.2) >= 4

    # Geometric means land in the paper's band, ordered 0delay >= tuned-ish.
    assert 1.15 < gm[zero] < 1.6
    assert 1.1 < gm[adapt] < 1.6
    assert 1.1 < gm[tuned] < 1.6
    assert gm[zero] >= gm[tuned] - 0.02
