"""Figure 10b — bus utilization.

Paper: 0-delay consumes much more bandwidth than the other algorithms on
most benchmarks; adaptive/tuned are comparable to (or below) the VL
baseline because successful speculation turns VL's two-way request+data
traffic into one-way pushes.
"""

from _shared import comparison_grid

from repro.eval import render_fig10b


def test_fig10b_bus_utilization(benchmark):
    grid = benchmark.pedantic(comparison_grid, rounds=1, iterations=1)
    print("\n" + render_fig10b(grid))

    vl, zero, adapt, _tuned = grid.settings
    bu = grid.bus_utilizations()
    fr = grid.failure_rates()

    # 0-delay burns at least as much bandwidth as adaptive wherever its
    # failure rate is high.
    for w in bu:
        if fr[w][zero] > 0.4:
            assert bu[w][zero] >= bu[w][adapt], w

    # One-way traffic: with failures under 50%, SPAMeR puts no more packets
    # on the network than VL (Section 4.3's packet-count argument).
    for w, per_setting in grid.metrics.items():
        if fr[w][adapt] < 0.5:
            assert per_setting[adapt].bus_packets <= per_setting[vl].bus_packets, w
