"""pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

# Allow `import _shared` from bench modules when pytest is run from the
# repository root.
sys.path.insert(0, str(Path(__file__).parent))
