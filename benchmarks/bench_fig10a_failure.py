"""Figure 10a — push failure rates.

Paper: VL is ~0% almost everywhere (halo's "prerequests" excepted); 0-delay
shows super-high failure rates on most benchmarks but not on ping-pong or
sweep; adaptive stays under 50% on all benchmarks; tuned runs slightly
above adaptive.
"""

from _shared import comparison_grid

from repro.eval import render_fig10a


def test_fig10a_failure_rates(benchmark):
    grid = benchmark.pedantic(comparison_grid, rounds=1, iterations=1)
    print("\n" + render_fig10a(grid))

    vl, zero, adapt, tuned = grid.settings
    fr = grid.failure_rates()

    for w in fr:
        assert fr[w][vl] < 0.05, (w, "VL should almost never fail")
        assert fr[w][adapt] < 0.5, (w, "adaptive keeps failures under 50%")

    # 0-delay fails hard on the backlogged benchmarks...
    assert sum(1 for w in fr if fr[w][zero] > 0.4) >= 3
    # ...but ping-pong and sweep "do not make many failures".
    assert fr["ping-pong"][zero] < 0.05
    assert fr["sweep"][zero] < 0.05
    # incast: the paper's 32-line round-robin fill-up story.
    assert fr["incast"][zero] > 0.5
