"""Figure 9 — execution-time breakdown: consumer-cacheline empty cycles.

Paper: "on most benchmarks, SPAMeR cuts off some empty cycles to reduce the
total execution time" — the win comes from pre-filling consumer lines.
"""

from _shared import comparison_grid

from repro.eval import render_fig9


def test_fig9_breakdown(benchmark):
    grid = benchmark.pedantic(comparison_grid, rounds=1, iterations=1)
    print("\n" + render_fig9(grid))

    vl, zero, _adapt, _tuned = grid.settings
    br = grid.breakdown()
    sp = grid.speedups()

    # Wherever SPAMeR wins clearly, the empty-cycle share shrank.
    improved = [w for w in sp if sp[w][zero] > 1.2]
    assert improved, "no benchmark improved - grid broken"
    for w in improved:
        assert br[w][zero][0] < br[w][vl][0], w

    # Bars are self-consistent: empty + non-empty == execution time.
    for w, per_setting in grid.metrics.items():
        for label, m in per_setting.items():
            empty, nonempty = br[w][label]
            assert abs(empty + nonempty - m.exec_cycles) <= 1
