"""Figure 11 (a–h) — execution time vs dynamic SRD push energy under the
tuned-parameter sweep, per benchmark, normalized to the VL baseline.

Each panel plots VL (the black dot at (1,1)), 0-delay (star), adaptive
(triangle), the paper's chosen tuned parameters (cross) and other tuned
combinations (small dots).  The paper's conclusions asserted here:

* 0-delay buys speed at disproportionate energy on hard benchmarks;
* the chosen parameter set sits on the good side of the cloud for FIR (the
  benchmark it was tuned on);
* the parameters have limited impact on the insensitive benchmarks.
"""

from itertools import product

from _shared import BENCH_SCALE, BENCH_SEED

from repro.eval import PAPER_TUNED_PARAMS, sensitivity_sweep
from repro.eval.report import format_table
from repro.spamer.delay import TunedParams
from repro.workloads import workload_names

#: Compact grid for the bench run (the library's default_parameter_grid()
#: is the full 108-combination sweep).  τ is swept upward from the paper's
#: 96: values below the stash-response latency destabilize the planned-
#: delay feedback loop in this substrate (the very "tolerance to interval
#: variation" role Section 3.5 assigns to τ).
COMPACT_GRID = [
    TunedParams(zeta=z, tau=t, delta=d)
    for z, t, d in product((128, 256), (96, 192), (32, 64))
]


def panel(workload: str):
    return sensitivity_sweep(
        workload,
        params_grid=COMPACT_GRID,
        scale=BENCH_SCALE * 0.6,
        seed=BENCH_SEED,
    )


def test_fig11_sensitivity(benchmark):
    panels = benchmark.pedantic(
        lambda: {name: panel(name) for name in workload_names()},
        rounds=1,
        iterations=1,
    )
    for name, points in panels.items():
        rows = [
            [p.label, f"{p.normalized_delay:.3f}", f"{p.normalized_energy:.3f}"]
            for p in points
        ]
        print("\n" + format_table(
            ["algorithm", "delay (norm.)", "energy (norm.)"],
            rows,
            title=f"Figure 11 panel: {name}",
        ))

    for name, points in panels.items():
        by_label = {}
        for p in points:
            by_label.setdefault(p.label, p)
        baseline = by_label["VL (baseline)"]
        assert baseline.normalized_delay == 1.0
        assert baseline.normalized_energy == 1.0
        chosen = [p for p in points if p.is_paper_choice][0]
        # The chosen set never degrades a benchmark badly (cross-validation
        # claim of Section 3.5) ...
        assert chosen.normalized_delay < 1.15, name
        # ... and tuned-parameter spread on delay stays bounded.
        tuned_delays = [p.normalized_delay for p in points if p.params is not None]
        assert max(tuned_delays) - min(tuned_delays) < 0.5, name

    # On FIR, 0-delay pays clearly more energy than the tuned choice.
    fir = panels["FIR"]
    zero = [p for p in fir if p.label == "SPAMeR (0delay)"][0]
    chosen = [p for p in fir if p.is_paper_choice][0]
    assert zero.normalized_energy >= chosen.normalized_energy
