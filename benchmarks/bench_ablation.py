"""Ablations beyond the paper's figures (design choices DESIGN.md calls out).

* **specBuf capacity** — Section 4.5 notes 64 entries exceed what the
  benchmarks need; shrinking below the workload's endpoint count must
  degrade gracefully (the OS would manage the overflow).
* **interconnect latency** — the substitution's main free parameter: the
  speculation win should grow with the request-leg latency it hides.
* **fixed-delay control** — a naive constant delay bridges 0-delay and the
  learned algorithms.
"""

import pytest

from _shared import BENCH_SCALE, BENCH_SEED

from repro.config import SystemConfig
from repro.eval import Setting, run_workload, standard_settings
from repro.eval.report import format_speedup, format_table
from repro.spamer.delay import FixedDelay, ZeroDelay


def test_ablation_bus_latency(benchmark):
    """Speedup vs interconnect latency: more latency, more to hide."""

    def sweep():
        out = {}
        for latency in (18, 36, 72):
            # The library's refetch threshold is defined relative to the
            # platform round trip; scale it along or the slower platform's
            # prerequests turn into systematic prefetching.
            cfg = SystemConfig(
                bus_latency=latency,
                refetch_interval=max(64, 160 * latency // 36),
            )
            vl, zero = standard_settings()[:2]
            base = run_workload("incast", vl, scale=BENCH_SCALE, config=cfg,
                                seed=BENCH_SEED)
            spec = run_workload("incast", zero, scale=BENCH_SCALE, config=cfg,
                                seed=BENCH_SEED)
            out[latency] = spec.speedup_over(base)
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[lat, format_speedup(sp)] for lat, sp in result.items()]
    print("\n" + format_table(["bus latency (cycles)", "incast speedup"],
                              rows, title="Ablation: interconnect latency"))
    assert result[72] > result[18]


def test_ablation_specbuf_capacity(benchmark):
    """A specBuf big enough for every endpoint behaves like the default."""

    def sweep():
        out = {}
        for entries in (2, 8, 64):
            cfg = SystemConfig(specbuf_entries=entries)
            zero = standard_settings()[1]
            try:
                m = run_workload("incast", zero, scale=BENCH_SCALE, config=cfg,
                                 seed=BENCH_SEED)
                out[entries] = m.exec_cycles
            except Exception as exc:  # registration overflow
                out[entries] = f"refused ({type(exc).__name__})"
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[k, v] for k, v in result.items()]
    print("\n" + format_table(["specBuf entries", "incast exec cycles"],
                              rows, title="Ablation: specBuf capacity"))
    # incast registers a single entry, so even tiny specBufs suffice.
    assert result[2] == result[64]


def test_ablation_fixed_delay(benchmark):
    """FixedDelay sits between 0-delay and an over-delayed control."""

    def sweep():
        out = {}
        for delay in (0, 64, 512, 4096):
            setting = Setting(
                f"SPAMeR(fixed:{delay})", "spamer",
                (lambda d=delay: ZeroDelay() if d == 0 else FixedDelay(d)),
            )
            m = run_workload("incast", setting, scale=BENCH_SCALE, seed=BENCH_SEED)
            out[delay] = m.exec_cycles
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[k, v] for k, v in result.items()]
    print("\n" + format_table(["fixed delay (cycles)", "incast exec cycles"],
                              rows, title="Ablation: fixed speculative delay"))
    # Extreme over-delay costs performance relative to prompt pushes.
    assert result[4096] > min(result[0], result[64])


def test_ablation_spin_then_yield(benchmark):
    """The optional spin-then-yield dequeue discipline coarsens delivery
    detection: it must never help, and usually hurts, the VL baseline."""

    def sweep():
        vl = standard_settings()[0]
        spin = SystemConfig(spin_then_yield=True)
        base = run_workload("incast", vl, scale=BENCH_SCALE, seed=BENCH_SEED)
        yielding = run_workload("incast", vl, scale=BENCH_SCALE, config=spin,
                                seed=BENCH_SEED)
        return base.exec_cycles, yielding.exec_cycles

    pure_spin, with_yield = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nAblation spin-then-yield: pure spin {pure_spin} cycles, "
          f"with yield {with_yield} cycles")
    assert with_yield >= pure_spin * 0.98
