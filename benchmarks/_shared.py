"""Shared state for the benchmark harness.

The Figure 8/9/10 benches all consume the same workload × setting grid, so
it is computed once per pytest session and cached.  ``REPRO_BENCH_SCALE``
scales every benchmark's message counts (default 0.25 — a few seconds per
figure; use 1.0 for full paper-scale runs).
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.eval import ComparisonResult, comparison_experiment

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", str(0xC0FFEE)))


@lru_cache(maxsize=1)
def comparison_grid() -> ComparisonResult:
    """The full 8-benchmark × 4-setting grid behind Figures 8, 9 and 10."""
    return comparison_experiment(scale=BENCH_SCALE, seed=BENCH_SEED)
