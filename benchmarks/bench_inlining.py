"""Section 3.4/4.3 — library inlining micro-optimization.

Paper: making the hot queue functions macros (inlined at preprocessing) is
worth about 1.02× on the VL baseline.  The bench measures the same ratio by
toggling the per-call overhead.
"""

from _shared import BENCH_SCALE, BENCH_SEED

from repro.eval import inlining_experiment
from repro.eval.report import format_speedup, format_table


def test_inlining_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: inlining_experiment(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    rows = [[k, format_speedup(v)] for k, v in result.items()]
    print("\n" + format_table(["benchmark", "inlining speedup"], rows,
                              title="Section 3.4: function-inlining speedup"))
    # "Experiments reveals the inline function has limited improvement
    # (1.02x speedup on average)."
    assert 1.0 < result["geomean"] < 1.1
