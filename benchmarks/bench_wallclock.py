"""Wall-clock harness — serial vs. parallel executor on a fixed matrix.

Unlike the figure benches (which measure *simulated* cycles), this one
measures *host* wall time: the same grid of independent simulations is run
serially and through the multiprocess executor, and the two legs' metrics
must be bit-identical — so the recorded speedup can never come from
computing something different.  Timings are record-only (printed and
written to ``BENCH_parallel.json`` by ``tools/bench.py``); nothing here
asserts a threshold, keeping the job green on loaded or single-core CI
machines.  See docs/PERFORMANCE.md.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

# tools/ is not a package; make `import bench` resolve to tools/bench.py.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))

import bench

from _shared import BENCH_SEED


def test_wallclock_parallel_matches_serial(benchmark):
    result = benchmark.pedantic(
        bench.run_benchmark,
        kwargs=dict(
            workloads=bench.QUICK_WORKLOADS,
            settings=bench.QUICK_SETTINGS,
            scale=bench.QUICK_SCALE,
            seed=BENCH_SEED,
            jobs=2,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + json.dumps(result, indent=2, sort_keys=True))

    # The invariant worth asserting: both legs computed the same thing.
    assert result["identical"]
    assert result["matrix"]["runs"] == 4
    assert result["serial"]["kernel_events"] > 0
    # Record-only: wall times exist, but no flaky speedup threshold.
    assert result["serial"]["wall_s"] > 0
    assert result["parallel"]["wall_s"] > 0
